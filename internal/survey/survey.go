// Package survey reproduces the paper's Section 2 literature study:
// a corpus of systems papers is filtered by keyword and venue, then
// manually labelled by two reviewers for three reporting criteria
// (does the paper report averages/medians, does it report variability
// or confidence, is it under-specified), with Cohen's Kappa measuring
// inter-rater agreement. The outputs are Tables 1-2 and Figure 1.
//
// The paper's raw corpus (1,867 articles) is not redistributable, so
// this package ships a calibrated synthetic corpus generator: the
// funnel counts (1867 → 138 → 44), venue split (15 NSDI, 7 OSDI,
// 7 SOSP, 15 SC), label proportions (>60% under-specified; 37% of
// central-tendency reporters giving variability) and repetition
// histogram match the published aggregates, so every downstream
// analysis reproduces Figure 1 faithfully.
package survey

import (
	"fmt"
	"sort"
	"strings"

	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
)

// Venues covered by the survey (Table 1).
var Venues = []string{"NSDI", "OSDI", "SOSP", "SC"}

// Keywords used for the automatic filter (Table 1).
var Keywords = []string{
	"big data", "streaming", "hadoop", "mapreduce", "spark",
	"data storage", "graph processing", "data analytics",
}

// YearRange covered by the survey (Table 1).
var YearRange = [2]int{2008, 2018}

// ReviewerLabel is one reviewer's assessment of one article.
type ReviewerLabel struct {
	// ReportsCentral: the article reports averages or medians.
	ReportsCentral bool
	// ReportsVariability: the article reports variance, percentiles,
	// error bars or confidence intervals.
	ReportsVariability bool
	// Underspecified: the article omits repetition counts or even
	// which statistic its numbers are.
	Underspecified bool
}

// Article is one corpus entry.
type Article struct {
	ID       int
	Venue    string
	Year     int
	Title    string
	Abstract string
	// CloudExperiments marks articles whose empirical evaluation ran
	// on a public cloud (the manual filter's criterion).
	CloudExperiments bool
	// Citations at survey time.
	Citations int
	// Repetitions reported; 0 when unspecified.
	Repetitions int
	// LabelA and LabelB are the two reviewers' assessments.
	LabelA, LabelB ReviewerLabel
}

// MatchesKeywords reports whether the article passes the automatic
// keyword filter over title and abstract.
func (a Article) MatchesKeywords(keywords []string) bool {
	text := strings.ToLower(a.Title + " " + a.Abstract)
	for _, kw := range keywords {
		if strings.Contains(text, strings.ToLower(kw)) {
			return true
		}
	}
	return false
}

// Funnel is the survey's filtering pipeline result (Table 2).
type Funnel struct {
	Total            int
	KeywordFiltered  int
	CloudExperiments int
	VenueCounts      map[string]int
	TotalCitations   int
}

// RunFunnel applies the Table 2 pipeline to a corpus.
func RunFunnel(corpus []Article, keywords []string) Funnel {
	f := Funnel{Total: len(corpus), VenueCounts: make(map[string]int)}
	for _, a := range corpus {
		if !a.MatchesKeywords(keywords) {
			continue
		}
		f.KeywordFiltered++
		if !a.CloudExperiments {
			continue
		}
		f.CloudExperiments++
		f.VenueCounts[a.Venue]++
		f.TotalCitations += a.Citations
	}
	return f
}

// Figure1a holds the reporting-aspect percentages of Figure 1a,
// computed (per the paper) from the reviewer scores more favourable
// to the articles, plus the per-criterion Kappa agreement scores.
type Figure1a struct {
	// Percentages over the selected articles. Aspects are not
	// mutually exclusive.
	ReportingCentralPct     float64
	ReportingVariabilityPct float64
	UnderspecifiedPct       float64
	// VariabilityAmongCentralPct is the share of central-tendency
	// reporters that also report variability (the paper's 37%).
	VariabilityAmongCentralPct float64
	// Kappa scores for the three criteria: central, variability,
	// specification.
	Kappa [3]float64
}

// AnalyzeReporting computes Figure 1a over the selected (cloud
// experiment) articles.
func AnalyzeReporting(selected []Article) (Figure1a, error) {
	n := len(selected)
	if n == 0 {
		return Figure1a{}, fmt.Errorf("survey: no selected articles")
	}

	var central, variability, underspec, variAmongCentral int
	labelsA := make([][3]bool, n)
	labelsB := make([][3]bool, n)
	for i, a := range selected {
		labelsA[i] = [3]bool{a.LabelA.ReportsCentral, a.LabelA.ReportsVariability, a.LabelA.Underspecified}
		labelsB[i] = [3]bool{a.LabelB.ReportsCentral, a.LabelB.ReportsVariability, a.LabelB.Underspecified}

		// "Out of the two reviewers' scores, we plot the lower scores,
		// i.e., ones that are more favorable to the articles":
		// favourable means reporting=true counts if either says so,
		// underspecified counts only if both say so.
		c := a.LabelA.ReportsCentral || a.LabelB.ReportsCentral
		v := a.LabelA.ReportsVariability || a.LabelB.ReportsVariability
		u := a.LabelA.Underspecified && a.LabelB.Underspecified
		if c {
			central++
			if v {
				variAmongCentral++
			}
		}
		if v {
			variability++
		}
		if u {
			underspec++
		}
	}

	fig := Figure1a{
		ReportingCentralPct:     100 * float64(central) / float64(n),
		ReportingVariabilityPct: 100 * float64(variability) / float64(n),
		UnderspecifiedPct:       100 * float64(underspec) / float64(n),
	}
	if central > 0 {
		fig.VariabilityAmongCentralPct = 100 * float64(variAmongCentral) / float64(central)
	}

	for k := 0; k < 3; k++ {
		a := make([]bool, n)
		b := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = labelsA[i][k]
			b[i] = labelsB[i][k]
		}
		kappa, err := stats.CohenKappa(a, b)
		if err != nil {
			return fig, fmt.Errorf("survey: kappa for criterion %d: %w", k, err)
		}
		fig.Kappa[k] = kappa
	}
	return fig, nil
}

// RepetitionHistogram is Figure 1b: how many of the properly
// specified articles used each repetition count.
type RepetitionHistogram struct {
	// Counts maps repetition count to number of articles.
	Counts map[int]int
	// Specified is the number of articles reporting repetitions.
	Specified int
	// AtMost15Pct is the share of specified articles using <= 15
	// repetitions (the paper's 76%).
	AtMost15Pct float64
}

// AnalyzeRepetitions computes Figure 1b.
func AnalyzeRepetitions(selected []Article) RepetitionHistogram {
	h := RepetitionHistogram{Counts: make(map[int]int)}
	atMost15 := 0
	for _, a := range selected {
		if a.Repetitions <= 0 {
			continue
		}
		h.Counts[a.Repetitions]++
		h.Specified++
		if a.Repetitions <= 15 {
			atMost15++
		}
	}
	if h.Specified > 0 {
		h.AtMost15Pct = 100 * float64(atMost15) / float64(h.Specified)
	}
	return h
}

// RepetitionValues returns the histogram's keys in ascending order.
func (h RepetitionHistogram) RepetitionValues() []int {
	out := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Selected returns the articles that pass both filters, in corpus
// order.
func Selected(corpus []Article, keywords []string) []Article {
	var out []Article
	for _, a := range corpus {
		if a.MatchesKeywords(keywords) && a.CloudExperiments {
			out = append(out, a)
		}
	}
	return out
}

// hitRatePerVenue calibrates the generator: how many of each venue's
// selected articles appear in Table 2.
var selectedPerVenue = map[string]int{"NSDI": 15, "OSDI": 7, "SOSP": 7, "SC": 15}

// GenerateCorpus synthesises a corpus whose funnel and label
// aggregates reproduce the paper's published numbers. The corpus is
// deterministic for a given source.
func GenerateCorpus(src *simrand.Source) []Article {
	const (
		total    = 1867
		filtered = 138
		selected = 44
	)
	corpus := make([]Article, 0, total)
	id := 0

	nextVenue := func(i int) string { return Venues[i%len(Venues)] }
	year := func() int {
		return YearRange[0] + src.Intn(YearRange[1]-YearRange[0]+1)
	}

	// 1) The 44 selected articles: keyword-matching, cloud
	// experiments, calibrated labels.
	//
	// Targets (favourable aggregation): ~61% under-specified (27/44),
	// central-tendency reporters ~43% (19/44), of which 37% (7/19)
	// report variability. Repetition counts follow Figure 1b's
	// support {3, 5, 9, 10, 15, 20, 100} with most mass at 3-10.
	repPlan := []int{
		3, 3, 3, 5, 5, 5, 10, 10, 10, 10, 9, 15, 20, 100, 3, 5, 10,
	} // 17 articles specify repetitions; 76% (13/17) use <= 15
	venueQuota := map[string]int{}
	for v, want := range selectedPerVenue {
		venueQuota[v] = want
	}
	venueOrder := []string{"NSDI", "OSDI", "SOSP", "SC"}
	planned := 0
	for _, v := range venueOrder {
		for k := 0; k < venueQuota[v]; k++ {
			a := Article{
				ID:               id,
				Venue:            v,
				Year:             year(),
				Title:            fmt.Sprintf("Scalable %s processing system %d", Keywords[id%len(Keywords)], id),
				Abstract:         "We evaluate our system on a public cloud using Spark workloads.",
				CloudExperiments: true,
				Citations:        50 + src.Intn(800),
			}
			idx := planned
			planned++

			// Label plan: first 19 report central tendency; of those,
			// the first 7 also report variability. The last 27
			// articles are under-specified (overlap with reporters is
			// allowed: aspects are not mutually exclusive).
			central := idx < 19
			variability := idx < 7
			underspec := idx >= 17 // 27 articles
			if idx < len(repPlan) {
				a.Repetitions = repPlan[idx]
			}
			truth := ReviewerLabel{
				ReportsCentral:     central,
				ReportsVariability: variability,
				Underspecified:     underspec,
			}
			a.LabelA = truth
			a.LabelB = truth
			// Reviewer disagreement calibrated to the published
			// Kappas (0.95, 0.81, 0.85): flip B's label rarely.
			if src.Float64() < 0.02 {
				a.LabelB.ReportsCentral = !a.LabelB.ReportsCentral
			}
			if src.Float64() < 0.04 {
				a.LabelB.ReportsVariability = !a.LabelB.ReportsVariability
			}
			if src.Float64() < 0.05 {
				a.LabelB.Underspecified = !a.LabelB.Underspecified
			}
			corpus = append(corpus, a)
			id++
		}
	}

	// 2) The 94 keyword-matching articles without cloud experiments.
	for i := 0; i < filtered-selected; i++ {
		corpus = append(corpus, Article{
			ID:        id,
			Venue:     nextVenue(id),
			Year:      year(),
			Title:     fmt.Sprintf("On %s in dedicated clusters %d", Keywords[id%len(Keywords)], id),
			Abstract:  "Evaluation on a private bare-metal testbed.",
			Citations: src.Intn(400),
		})
		id++
	}

	// 3) The remaining non-matching articles.
	for i := 0; i < total-filtered; i++ {
		corpus = append(corpus, Article{
			ID:        id,
			Venue:     nextVenue(id),
			Year:      year(),
			Title:     fmt.Sprintf("A kernel mechanism study %d", id),
			Abstract:  "Operating systems internals.",
			Citations: src.Intn(300),
		})
		id++
	}
	return corpus
}
