package survey

import (
	"testing"

	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
)

func corpus(t *testing.T) []Article {
	t.Helper()
	return GenerateCorpus(simrand.New(2019))
}

func TestFunnelMatchesTable2(t *testing.T) {
	f := RunFunnel(corpus(t), Keywords)
	if f.Total != 1867 {
		t.Errorf("total = %d, want 1867", f.Total)
	}
	if f.KeywordFiltered != 138 {
		t.Errorf("keyword-filtered = %d, want 138", f.KeywordFiltered)
	}
	if f.CloudExperiments != 44 {
		t.Errorf("cloud experiments = %d, want 44", f.CloudExperiments)
	}
	wantVenues := map[string]int{"NSDI": 15, "OSDI": 7, "SOSP": 7, "SC": 15}
	for v, want := range wantVenues {
		if f.VenueCounts[v] != want {
			t.Errorf("venue %s = %d, want %d", v, f.VenueCounts[v], want)
		}
	}
	// The paper reports 11,203 citations; the synthetic corpus only
	// needs to be "highly cited" in aggregate.
	if f.TotalCitations < 2000 {
		t.Errorf("selected citations = %d, implausibly low", f.TotalCitations)
	}
}

func TestSelectedConsistentWithFunnel(t *testing.T) {
	c := corpus(t)
	sel := Selected(c, Keywords)
	f := RunFunnel(c, Keywords)
	if len(sel) != f.CloudExperiments {
		t.Errorf("Selected returned %d, funnel says %d", len(sel), f.CloudExperiments)
	}
	for _, a := range sel {
		if !a.CloudExperiments {
			t.Error("non-cloud article selected")
		}
	}
}

func TestFigure1aAggregates(t *testing.T) {
	sel := Selected(corpus(t), Keywords)
	fig, err := AnalyzeReporting(sel)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: over 60% severely under-specified.
	if fig.UnderspecifiedPct < 55 || fig.UnderspecifiedPct > 70 {
		t.Errorf("under-specified = %.1f%%, want ~61%%", fig.UnderspecifiedPct)
	}
	// Paper: of the central-tendency reporters, only 37% report
	// variance or confidence.
	if fig.VariabilityAmongCentralPct < 25 || fig.VariabilityAmongCentralPct > 50 {
		t.Errorf("variability among reporters = %.1f%%, want ~37%%", fig.VariabilityAmongCentralPct)
	}
	// Aspects are percentages.
	for _, pct := range []float64{fig.ReportingCentralPct, fig.ReportingVariabilityPct, fig.UnderspecifiedPct} {
		if pct < 0 || pct > 100 {
			t.Errorf("percentage %g out of range", pct)
		}
	}
}

func TestKappaAlmostPerfect(t *testing.T) {
	sel := Selected(corpus(t), Keywords)
	fig, err := AnalyzeReporting(sel)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.95, 0.81, 0.85 — all above the 0.8 threshold.
	for i, k := range fig.Kappa {
		if k < 0.7 {
			t.Errorf("kappa[%d] = %.2f, want near the paper's >= 0.8", i, k)
		}
		if k > 1 {
			t.Errorf("kappa[%d] = %.2f > 1", i, k)
		}
	}
	if stats.KappaInterpretation(fig.Kappa[0]) != "almost perfect agreement" {
		t.Errorf("central kappa %.2f should be almost perfect", fig.Kappa[0])
	}
}

func TestFigure1bRepetitions(t *testing.T) {
	sel := Selected(corpus(t), Keywords)
	h := AnalyzeRepetitions(sel)
	if h.Specified == 0 {
		t.Fatal("no articles specify repetitions")
	}
	// Paper: repetition counts come from {3, 5, 9, 10, 15, 20, 100}.
	allowed := map[int]bool{3: true, 5: true, 9: true, 10: true, 15: true, 20: true, 100: true}
	for _, v := range h.RepetitionValues() {
		if !allowed[v] {
			t.Errorf("unexpected repetition count %d", v)
		}
	}
	// Paper: 76% of properly specified studies use <= 15 repetitions.
	if h.AtMost15Pct < 65 || h.AtMost15Pct > 90 {
		t.Errorf("<=15 repetitions = %.1f%%, want ~76%%", h.AtMost15Pct)
	}
	// Mode at 3-10 (most articles that do report use 3, 5 or 10).
	if h.Counts[3] == 0 || h.Counts[5] == 0 || h.Counts[10] == 0 {
		t.Errorf("histogram missing the common 3/5/10 counts: %v", h.Counts)
	}
}

func TestAnalyzeReportingEmpty(t *testing.T) {
	if _, err := AnalyzeReporting(nil); err == nil {
		t.Error("empty selection should error")
	}
}

func TestMatchesKeywords(t *testing.T) {
	a := Article{Title: "A Big Data System", Abstract: "nothing else"}
	if !a.MatchesKeywords(Keywords) {
		t.Error("title keyword not matched")
	}
	b := Article{Title: "Kernel study", Abstract: "uses MapReduce internally"}
	if !b.MatchesKeywords(Keywords) {
		t.Error("abstract keyword not matched (case-insensitive)")
	}
	c := Article{Title: "Kernel study", Abstract: "scheduler"}
	if c.MatchesKeywords(Keywords) {
		t.Error("false keyword match")
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := GenerateCorpus(simrand.New(7))
	b := GenerateCorpus(simrand.New(7))
	if len(a) != len(b) {
		t.Fatal("corpus lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus diverges at %d", i)
		}
	}
}

func TestYearRangeRespected(t *testing.T) {
	for _, a := range corpus(t) {
		if a.Year < YearRange[0] || a.Year > YearRange[1] {
			t.Fatalf("article %d year %d outside %v", a.ID, a.Year, YearRange)
		}
	}
}
