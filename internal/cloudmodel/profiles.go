package cloudmodel

import (
	"fmt"
	"math"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/tokenbucket"
)

// Profile bundles everything needed to emulate one cloud's network
// path: a shaper factory (the QoS mechanism), a virtual-NIC model
// (latency/retransmission behaviour) and a nominal line rate.
type Profile struct {
	// Cloud is the provider key: "ec2", "gce" or "hpccloud".
	Cloud string
	// Instance is the flavour this profile was built for.
	Instance string
	// LineRateGbps is the nominal NIC speed.
	LineRateGbps float64
	// VNIC is the latency/retransmission model.
	VNIC netem.VNICModel
	// NewShaper builds a fresh egress shaper, representing a newly
	// allocated VM. Each call incarnates new per-VM parameters, which
	// is exactly the paper's "fresh set of VMs" reset.
	NewShaper func(src *simrand.Source) netem.Shaper
}

// EC2Profile models a c5-family instance: an ENA vNIC (jumbo frames,
// sub-millisecond RTT) behind the token-bucket QoS reverse-engineered
// in Section 3.3. instanceName must be one of the c5 catalog entries.
func EC2Profile(instanceName string) (Profile, error) {
	var spec tokenbucket.InstanceSpec
	found := false
	for _, s := range tokenbucket.C5Family() {
		if s.Name == instanceName {
			spec, found = s, true
			break
		}
	}
	if !found {
		return Profile{}, fmt.Errorf("cloudmodel: unknown EC2 instance %q", instanceName)
	}
	return Profile{
		Cloud:        "ec2",
		Instance:     instanceName,
		LineRateGbps: spec.Params.HighGbps,
		VNIC:         netem.EC2VNIC(),
		NewShaper: func(src *simrand.Source) netem.Shaper {
			p := spec.Incarnate(src)
			sh, err := netem.NewBucketShaper(p)
			if err != nil {
				// Incarnate clamps into validity; reaching here is a
				// programming error, not an input error.
				panic(fmt.Sprintf("cloudmodel: incarnated invalid params: %v", err))
			}
			return sh
		},
	}, nil
}

// gceShaper models Google Cloud's network path. GCE enforces a
// per-core bandwidth QoS (2 Gbps per vCPU). The paper observed that
// longer streams achieve better, more stable performance, and
// attributes this to Andromeda's flow placement: idle flows are routed
// through dedicated gateways and migrate onto fast paths only as they
// stay busy. gceShaper reproduces this mechanistically: each send
// burst starts from a randomly drawn "cold" fraction of the QoS cap
// and warms toward the cap over rampSec of continuous transfer, with
// multiplicative noise redrawn every noisePeriodSec.
type gceShaper struct {
	capGbps        float64
	rampSec        float64
	noisePeriodSec float64
	noiseSigma     float64
	coldFloor      float64 // lowest cold-start fraction
	src            *simrand.Source

	warmSec    float64 // continuous transfer time so far
	coldFrac   float64
	noise      float64
	untilDraw  float64
	everActive bool
}

func newGCEShaper(cores int, src *simrand.Source) *gceShaper {
	g := &gceShaper{
		capGbps:        2 * float64(cores),
		rampSec:        20,
		noisePeriodSec: 10,
		noiseSigma:     0.02,
		coldFloor:      0.65,
		src:            src,
	}
	g.redrawCold()
	g.noise = 1 + src.Normal(0, g.noiseSigma)
	g.untilDraw = g.noisePeriodSec
	return g
}

func (g *gceShaper) redrawCold() {
	// Most cold starts land close to the cap; a minority land deep in
	// the tail (the long 5-30 tail of Figure 5).
	if g.src.Bernoulli(0.15) {
		g.coldFrac = g.src.Uniform(g.coldFloor, 0.85)
	} else {
		g.coldFrac = g.src.Uniform(0.85, 0.98)
	}
	g.warmSec = 0
}

func (g *gceShaper) capacity() float64 {
	warm := math.Min(1, g.warmSec/g.rampSec)
	frac := g.coldFrac + (1-g.coldFrac)*warm
	c := g.capGbps * frac * g.noise
	if c < 0 {
		c = 0
	}
	return c
}

// Rate implements netem.Shaper.
func (g *gceShaper) Rate(demand float64) float64 {
	if demand <= 0 {
		return 0
	}
	return math.Min(demand, g.capacity())
}

// Transfer implements netem.Shaper.
func (g *gceShaper) Transfer(demand, dt float64) float64 {
	if dt < 0 {
		panic("cloudmodel: negative duration")
	}
	moved := 0.0
	for dt > 1e-12 {
		step := math.Min(dt, g.untilDraw)
		// Warm-up progresses while transferring.
		moved += g.Rate(demand) * step
		g.warmSec += step
		g.untilDraw -= step
		dt -= step
		if g.untilDraw <= 1e-12 {
			g.noise = 1 + g.src.Normal(0, g.noiseSigma)
			g.untilDraw = g.noisePeriodSec
		}
	}
	g.everActive = true
	return moved
}

// Idle implements netem.Shaper. Idling long enough resets the flow to
// cold: Andromeda parks idle flows on gateway paths.
func (g *gceShaper) Idle(dt float64) {
	if dt < 0 {
		panic("cloudmodel: negative duration")
	}
	if dt >= 5 && g.everActive {
		g.redrawCold()
	}
	// Noise keeps evolving while idle.
	g.untilDraw -= dt
	for g.untilDraw <= 0 {
		g.noise = 1 + g.src.Normal(0, g.noiseSigma)
		g.untilDraw += g.noisePeriodSec
	}
}

// NextTransition implements netem.Shaper.
func (g *gceShaper) NextTransition(demand float64) float64 {
	next := g.untilDraw
	if g.warmSec < g.rampSec {
		// Capacity is continuously ramping; bound steps so the fluid
		// simulation tracks the ramp.
		next = math.Min(next, 1)
	}
	return next
}

// GCEProfile models an n1-style instance with the given core count:
// per-core 2 Gbps QoS, TSO-based vNIC (millisecond RTT, write-size-
// dependent retransmissions), and flow warm-up dynamics.
func GCEProfile(cores int) (Profile, error) {
	if cores <= 0 {
		return Profile{}, fmt.Errorf("cloudmodel: GCE needs positive core count, got %d", cores)
	}
	return Profile{
		Cloud:        "gce",
		Instance:     fmt.Sprintf("%d-core", cores),
		LineRateGbps: 2 * float64(cores),
		VNIC:         netem.GCEVNIC(),
		NewShaper: func(src *simrand.Source) netem.Shaper {
			return newGCEShaper(cores, src)
		},
	}, nil
}

// hpcCloudDist is the HPCCloud full-speed bandwidth distribution from
// Figure 4: an 8-core VM pair ranging 7.7-10.4 Gbps with most mass in
// the 9-10 Gbps band — no QoS mechanism, just contention on a small
// (~100 machine) cluster where there is little statistical
// multiplexing to smooth competing traffic.
var hpcCloudDist = simrand.MustQuantileDist(
	[]float64{0.01, 0.25, 0.50, 0.75, 0.99},
	[]float64{7.7, 8.9, 9.4, 9.8, 10.4},
)

// HPCCloudProfile models an 8-core HPCCloud VM: an unshaped path
// whose capacity is redrawn from the Figure 4 distribution every
// resample interval (the paper measured sample-to-sample swings up to
// 33% at 10-second granularity). Smaller VMs scale the distribution
// down proportionally to their core count (the cloud offered 2-, 4-
// and 8-core flavours).
func HPCCloudProfile(cores int) (Profile, error) {
	switch cores {
	case 2, 4, 8:
	default:
		return Profile{}, fmt.Errorf("cloudmodel: HPCCloud offered 2-, 4- or 8-core VMs, not %d", cores)
	}
	scale := float64(cores) / 8
	probs, values := hpcCloudDist.Knots()
	for i := range values {
		values[i] *= scale
	}
	dist := simrand.MustQuantileDist(probs, values)
	// EC2-like virtio NIC without enhanced networking: modest base
	// RTT, no TSO inflation beyond the MTU.
	vnic := netem.VNICModel{
		Name:               "hpccloud-virtio",
		MTUBytes:           1500,
		BaseRTTms:          0.35,
		RTTJitterFrac:      0.3,
		NormalQueuePackets: 16,
		DriverQueueBytes:   1_000_000,
		RetransBaseProb:    5e-6,
	}
	return Profile{
		Cloud:        "hpccloud",
		Instance:     fmt.Sprintf("%d-core", cores),
		LineRateGbps: 10 * scale,
		VNIC:         vnic,
		NewShaper: func(src *simrand.Source) netem.Shaper {
			sh, err := netem.NewSampledShaper(dist, 10, src)
			if err != nil {
				panic(fmt.Sprintf("cloudmodel: building HPCCloud shaper: %v", err))
			}
			return sh
		},
	}, nil
}

// BallaniProfile wraps one of the A-H distributions as a profile, for
// the Section 2.1 emulation: capacity is resampled every resampleSec
// seconds (the paper uses 5 s for Figure 3a and 50 s for Figure 3b).
func BallaniProfile(name string, resampleSec float64) (Profile, error) {
	cloud, err := BallaniCloudByName(name)
	if err != nil {
		return Profile{}, err
	}
	if resampleSec <= 0 {
		return Profile{}, fmt.Errorf("cloudmodel: non-positive resample interval %g", resampleSec)
	}
	dist := cloud.DistGbps()
	return Profile{
		Cloud:        "ballani-" + name,
		Instance:     fmt.Sprintf("emulated-%s", name),
		LineRateGbps: dist.Max(),
		VNIC:         netem.GCEVNIC(),
		NewShaper: func(src *simrand.Source) netem.Shaper {
			sh, err := netem.NewSampledShaper(dist, resampleSec, src)
			if err != nil {
				panic(fmt.Sprintf("cloudmodel: building Ballani shaper: %v", err))
			}
			return sh
		},
	}, nil
}
