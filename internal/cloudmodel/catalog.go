package cloudmodel

import "fmt"

// CampaignEntry is one row of Table 3: a (cloud, instance type)
// combination measured in the paper's campaign, with its advertised
// QoS, measurement duration, and cost.
type CampaignEntry struct {
	Cloud        string
	InstanceType string
	// QoSGbps is the advertised bandwidth cap; 0 means the provider
	// advertises none (HPCCloud).
	QoSGbps float64
	// QoSUpTo marks "≤" advertisements (EC2's "up to 10 Gbps").
	QoSUpTo bool
	// DurationDays is the measurement length.
	DurationDays int
	// ExhibitsVariability records the paper's verdict (every entry:
	// yes).
	ExhibitsVariability bool
	// CostUSD is the campaign cost; <0 means not applicable.
	CostUSD float64
	// Featured marks the rows presented in depth (the * rows).
	Featured bool
}

// Table3 returns the campaign summary exactly as the paper reports it.
func Table3() []CampaignEntry {
	return []CampaignEntry{
		{Cloud: "Amazon", InstanceType: "c5.XL", QoSGbps: 10, QoSUpTo: true, DurationDays: 21, ExhibitsVariability: true, CostUSD: 171, Featured: true},
		{Cloud: "Amazon", InstanceType: "m5.XL", QoSGbps: 10, QoSUpTo: true, DurationDays: 21, ExhibitsVariability: true, CostUSD: 193},
		{Cloud: "Amazon", InstanceType: "c5.9XL", QoSGbps: 10, DurationDays: 1, ExhibitsVariability: true, CostUSD: 73},
		{Cloud: "Amazon", InstanceType: "m4.16XL", QoSGbps: 20, DurationDays: 1, ExhibitsVariability: true, CostUSD: 153},
		{Cloud: "Google", InstanceType: "1 core", QoSGbps: 2, DurationDays: 21, ExhibitsVariability: true, CostUSD: 34},
		{Cloud: "Google", InstanceType: "2 core", QoSGbps: 4, DurationDays: 21, ExhibitsVariability: true, CostUSD: 67},
		{Cloud: "Google", InstanceType: "4 core", QoSGbps: 8, DurationDays: 21, ExhibitsVariability: true, CostUSD: 135},
		{Cloud: "Google", InstanceType: "8 core", QoSGbps: 16, DurationDays: 21, ExhibitsVariability: true, CostUSD: 269, Featured: true},
		{Cloud: "HPCCloud", InstanceType: "2 core", DurationDays: 7, ExhibitsVariability: true, CostUSD: -1},
		{Cloud: "HPCCloud", InstanceType: "4 core", DurationDays: 7, ExhibitsVariability: true, CostUSD: -1},
		{Cloud: "HPCCloud", InstanceType: "8 core", DurationDays: 7, ExhibitsVariability: true, CostUSD: -1, Featured: true},
	}
}

// QoSString renders the QoS column the way Table 3 prints it.
func (e CampaignEntry) QoSString() string {
	if e.QoSGbps == 0 {
		return "N/A"
	}
	if e.QoSUpTo {
		return fmt.Sprintf("<= %g", e.QoSGbps)
	}
	return fmt.Sprintf("%g", e.QoSGbps)
}

// Profile builds the emulation profile matching this catalog row. The
// big EC2 instances (c5.9XL, m4.16XL, m5.XL) are approximated by the
// closest c5 flavour with a matching line rate, since the paper only
// characterised the c5 family's bucket parameters in depth.
func (e CampaignEntry) Profile() (Profile, error) {
	switch e.Cloud {
	case "Amazon":
		switch e.InstanceType {
		case "c5.XL", "m5.XL":
			return EC2Profile("c5.xlarge")
		case "c5.9XL", "m4.16XL":
			return EC2Profile("c5.4xlarge")
		default:
			return Profile{}, fmt.Errorf("cloudmodel: no profile for Amazon %q", e.InstanceType)
		}
	case "Google":
		var cores int
		if _, err := fmt.Sscanf(e.InstanceType, "%d core", &cores); err != nil {
			return Profile{}, fmt.Errorf("cloudmodel: parsing GCE flavour %q: %w", e.InstanceType, err)
		}
		return GCEProfile(cores)
	case "HPCCloud":
		var cores int
		if _, err := fmt.Sscanf(e.InstanceType, "%d core", &cores); err != nil {
			return Profile{}, fmt.Errorf("cloudmodel: parsing HPCCloud flavour %q: %w", e.InstanceType, err)
		}
		return HPCCloudProfile(cores)
	default:
		return Profile{}, fmt.Errorf("cloudmodel: unknown cloud %q", e.Cloud)
	}
}

// CampaignTotals summarises the whole campaign the way the paper's
// abstract does: weeks of continuous measurement, datapoints, and
// petabytes moved. Computed, not hard-coded, from the catalog.
type CampaignTotals struct {
	Weeks        float64
	TotalCostUSD float64
	Entries      int
}

// Totals aggregates Table 3.
func Totals() CampaignTotals {
	var t CampaignTotals
	for _, e := range Table3() {
		t.Entries++
		t.Weeks += float64(e.DurationDays) / 7
		if e.CostUSD > 0 {
			t.TotalCostUSD += e.CostUSD
		}
	}
	return t
}
