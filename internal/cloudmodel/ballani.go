// Package cloudmodel encodes the cloud-specific network behaviour the
// paper measured or cited: the Ballani et al. bandwidth distributions
// for clouds A-H (Figure 2), shaper models for Amazon EC2 (token
// bucket), Google Cloud (per-core QoS with flow warm-up) and HPCCloud
// (unshaped stochastic contention), the Table 3 instance catalog, and
// the campaign runner that regenerates the Section 3 measurement
// figures.
package cloudmodel

import (
	"fmt"

	"cloudvar/internal/simrand"
)

// BallaniCloud is one of the eight real-world cloud bandwidth
// distributions from Ballani et al. [7], reproduced in the paper's
// Figure 2 as box-and-whisker plots of the 1st, 25th, 50th, 75th and
// 99th percentiles (in Mb/s). The Section 2.1 emulation samples
// uniformly from these distributions every 5 or 50 seconds.
type BallaniCloud struct {
	Name string
	// PercentilesMbps holds the values at the 1st, 25th, 50th, 75th
	// and 99th percentiles.
	PercentilesMbps [5]float64
}

// ballaniProbs are the cumulative probabilities of the five knots.
var ballaniProbs = []float64{0.01, 0.25, 0.50, 0.75, 0.99}

// BallaniClouds returns the A-H catalog. Values are read off
// Figure 2; they range from tight distributions near the top of the
// 1 Gb/s links (B, E) to extremely wide ones (C, F, G) whose
// inter-quartile ranges span hundreds of Mb/s — the clouds for which
// the paper demonstrates that 3-run medians are usually wrong.
func BallaniClouds() []BallaniCloud {
	return []BallaniCloud{
		{Name: "A", PercentilesMbps: [5]float64{390, 550, 620, 680, 780}},
		{Name: "B", PercentilesMbps: [5]float64{500, 600, 630, 660, 710}},
		{Name: "C", PercentilesMbps: [5]float64{100, 300, 450, 600, 850}},
		{Name: "D", PercentilesMbps: [5]float64{250, 480, 550, 610, 700}},
		{Name: "E", PercentilesMbps: [5]float64{620, 700, 750, 800, 900}},
		{Name: "F", PercentilesMbps: [5]float64{50, 150, 300, 500, 900}},
		{Name: "G", PercentilesMbps: [5]float64{100, 200, 350, 550, 800}},
		{Name: "H", PercentilesMbps: [5]float64{300, 450, 500, 550, 650}},
	}
}

// BallaniCloudByName looks up one of the A-H distributions.
func BallaniCloudByName(name string) (BallaniCloud, error) {
	for _, c := range BallaniClouds() {
		if c.Name == name {
			return c, nil
		}
	}
	return BallaniCloud{}, fmt.Errorf("cloudmodel: unknown Ballani cloud %q (want A-H)", name)
}

// Dist returns the quantile-interpolated sampling distribution in
// Mb/s.
func (c BallaniCloud) Dist() *simrand.QuantileDist {
	return simrand.MustQuantileDist(ballaniProbs, c.PercentilesMbps[:])
}

// DistGbps returns the distribution rescaled to Gb/s, the unit the
// emulator works in.
func (c BallaniCloud) DistGbps() *simrand.QuantileDist {
	values := make([]float64, len(c.PercentilesMbps))
	for i, v := range c.PercentilesMbps {
		values[i] = v / 1000
	}
	return simrand.MustQuantileDist(ballaniProbs, values)
}

// MedianMbps returns the distribution's median.
func (c BallaniCloud) MedianMbps() float64 { return c.PercentilesMbps[2] }

// IQRMbps returns the interquartile range, the width statistic the
// paper's Figure 3 outcome correlates with.
func (c BallaniCloud) IQRMbps() float64 {
	return c.PercentilesMbps[3] - c.PercentilesMbps[1]
}
