package cloudmodel

import (
	"fmt"
	"math"

	"cloudvar/internal/fleet/pool"
	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
	"cloudvar/internal/trace"
)

// CampaignConfig parameterises a Section 3 measurement campaign: one
// VM pair, one access regime, continuous measurement with fixed
// summarisation windows.
type CampaignConfig struct {
	// DurationSec is the campaign length (the paper ran for a week
	// per pair: 604800 s).
	DurationSec float64
	// BinSec is the summarisation window for continuous regimes
	// (paper: 10 s). Intermittent regimes summarise per send burst.
	BinSec float64
	// WriteBytes is the sender's socket write size (iperf default
	// 128 KiB).
	WriteBytes int
	// RTTSamplesPerBin bounds RTT sampling per window.
	RTTSamplesPerBin int
}

// DefaultCampaignConfig returns the paper's settings with a duration
// chosen by the caller.
func DefaultCampaignConfig(durationSec float64) CampaignConfig {
	return CampaignConfig{
		DurationSec:      durationSec,
		BinSec:           10,
		WriteBytes:       131072,
		RTTSamplesPerBin: 4,
	}
}

// Validate checks the configuration.
func (c CampaignConfig) Validate() error {
	switch {
	case c.DurationSec <= 0:
		return fmt.Errorf("cloudmodel: campaign duration must be positive")
	case c.BinSec <= 0:
		return fmt.Errorf("cloudmodel: bin must be positive")
	case c.WriteBytes <= 0:
		return fmt.Errorf("cloudmodel: write size must be positive")
	case c.RTTSamplesPerBin < 0:
		return fmt.Errorf("cloudmodel: negative RTT sample bound")
	}
	return nil
}

// CampaignScratch is a reusable per-worker arena for RunCampaign's
// transient buffers (the per-burst iperf result). Reusing one scratch
// across repetitions and cells eliminates the per-bin allocations of
// a campaign loop without affecting output: every value the returned
// series carries is freshly computed from the shaper, the vNIC model
// and the cell's own random substream — the scratch only lends
// memory, never state. The zero value is ready to use.
type CampaignScratch struct {
	iperf netem.IperfResult
}

// RunCampaign emulates a measurement campaign of the given regime
// against a fresh VM pair from the profile, producing the 10-second
// (or per-burst) summarised series behind Figures 4, 5, 6, 9 and 10.
func RunCampaign(p Profile, regime trace.Regime, cfg CampaignConfig, src *simrand.Source) (*trace.Series, error) {
	return RunCampaignScratch(p, regime, cfg, src, nil)
}

// RunCampaignScratch is RunCampaign with an explicit scratch arena
// (nil for a private one). The returned series is always freshly
// allocated — only burst-transient buffers live in the scratch — and
// is bit-identical for equal inputs regardless of how the scratch was
// previously used.
func RunCampaignScratch(p Profile, regime trace.Regime, cfg CampaignConfig, src *simrand.Source, scratch *CampaignScratch) (*trace.Series, error) {
	return RunCampaignObserved(p, regime, cfg, src, scratch, nil)
}

// RunCampaignObserved is RunCampaignScratch with a streaming hook:
// observe (when non-nil) sees every bin point in append order, at the
// moment it is produced. It is the attachment point for bounded-memory
// summarisation (internal/sketch): a streaming consumer absorbs each
// point as the campaign runs instead of re-walking the series after
// the fact, so a future series-free mode needs no new measurement
// path. The observer must not retain the point.
func RunCampaignObserved(p Profile, regime trace.Regime, cfg CampaignConfig, src *simrand.Source, scratch *CampaignScratch, observe func(trace.Point)) (*trace.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := regime.Validate(); err != nil {
		return nil, err
	}
	if scratch == nil {
		scratch = &CampaignScratch{}
	}
	shaper := p.NewShaper(src)

	label := fmt.Sprintf("%s/%s/%s", p.Cloud, p.Instance, regime.Name)
	interval := cfg.BinSec
	if !regime.Continuous() {
		interval = regime.SendSec
	}
	series := trace.NewSeries(label, interval)
	// Size the bin series up front: one point per bin for continuous
	// regimes, one per send burst for intermittent ones.
	perPoint := cfg.BinSec
	if !regime.Continuous() {
		perPoint = regime.SendSec + regime.RestSec
	}
	series.Points = make([]trace.Point, 0, int(math.Ceil(cfg.DurationSec/perPoint)))

	now := 0.0
	for now < cfg.DurationSec-1e-9 {
		var sendSec float64
		if regime.Continuous() {
			sendSec = math.Min(cfg.BinSec, cfg.DurationSec-now)
		} else {
			sendSec = math.Min(regime.SendSec, cfg.DurationSec-now)
		}

		res := &scratch.iperf
		err := netem.RunIperfInto(res, shaper, p.VNIC, netem.IperfConfig{
			DurationSec:      sendSec,
			WriteBytes:       cfg.WriteBytes,
			BinSec:           sendSec,
			RTTSamplesPerBin: cfg.RTTSamplesPerBin,
		}, src)
		if err != nil {
			return nil, fmt.Errorf("cloudmodel: campaign burst at t=%g: %w", now, err)
		}

		bw := res.MeanBandwidthGbps()
		pt := trace.Point{
			TimeSec:         now,
			BandwidthGbps:   bw,
			Retransmissions: res.Retransmissions,
			RTTms:           stats.Mean(res.RTTms),
			CPUFrac:         cpuModel(bw, p.LineRateGbps, src),
		}
		if len(res.RTTms) == 0 {
			pt.RTTms = 0
		}
		if err := series.Append(pt); err != nil {
			return nil, err
		}
		if observe != nil {
			observe(pt)
		}

		now += sendSec
		if !regime.Continuous() {
			rest := math.Min(regime.RestSec, cfg.DurationSec-now)
			if rest > 0 {
				shaper.Idle(rest)
				now += rest
			}
		}
	}
	return series, nil
}

// cpuModel approximates sender CPU load: proportional to achieved
// bandwidth (TCP processing dominates) plus a small noise floor.
func cpuModel(bwGbps, lineRateGbps float64, src *simrand.Source) float64 {
	if lineRateGbps <= 0 {
		return 0
	}
	frac := 0.08 + 0.8*bwGbps/lineRateGbps + src.Normal(0, 0.02)
	return math.Max(0, math.Min(1, frac))
}

// RegimeComparison is the campaign output for all three regimes on
// one cloud — the unit Figures 5, 6, 9 and 10 are drawn from.
type RegimeComparison struct {
	Profile Profile
	// Series maps regime name to its measurement series.
	Series map[string]*trace.Series
}

// RunAllRegimes measures every standard regime against fresh VM pairs
// from the profile (fresh pair per regime, as the paper did). The
// regimes run concurrently across GOMAXPROCS workers; because each
// regime draws from its own named substream of src, the result is
// bit-identical to a sequential run.
func RunAllRegimes(p Profile, cfg CampaignConfig, src *simrand.Source) (RegimeComparison, error) {
	return RunAllRegimesWorkers(p, cfg, src, 0)
}

// RunAllRegimesWorkers is RunAllRegimes with an explicit worker bound
// (<= 0 means GOMAXPROCS).
func RunAllRegimesWorkers(p Profile, cfg CampaignConfig, src *simrand.Source, workers int) (RegimeComparison, error) {
	regimes := trace.Regimes()
	// Derive every substream up front: Substream reads but never
	// advances the parent state, so the derivation is order-free and
	// matches what a sequential loop would hand each regime.
	srcs := make([]*simrand.Source, len(regimes))
	for i, regime := range regimes {
		srcs[i] = src.Substream("campaign/" + regime.Name)
	}
	// One scratch arena per worker: a worker's campaigns run strictly
	// in sequence, and the scratch never leaks into results.
	scratches := make([]CampaignScratch, pool.NumWorkers(workers, len(regimes)))
	series, errs := pool.CollectWorker(len(regimes), workers, func(w, i int) (*trace.Series, error) {
		return RunCampaignScratch(p, regimes[i], cfg, srcs[i], &scratches[w])
	})
	out := RegimeComparison{Profile: p, Series: make(map[string]*trace.Series)}
	for i, regime := range regimes {
		if errs[i] != nil {
			return out, fmt.Errorf("cloudmodel: regime %s: %w", regime.Name, errs[i])
		}
		out.Series[regime.Name] = series[i]
	}
	return out, nil
}

// SlowdownVsBest computes, for each regime, how much slower its mean
// send-phase bandwidth is than the best regime's — the "approximately
// 3x and 7x slowdowns" comparison of Figure 6.
func (rc RegimeComparison) SlowdownVsBest() map[string]float64 {
	best := 0.0
	means := make(map[string]float64, len(rc.Series))
	for name, s := range rc.Series {
		m := stats.Mean(s.Bandwidths())
		means[name] = m
		if m > best {
			best = m
		}
	}
	out := make(map[string]float64, len(means))
	for name, m := range means {
		if m > 0 {
			out[name] = best / m
		} else {
			out[name] = math.Inf(1)
		}
	}
	return out
}
