package cloudmodel

// Workload replay: the glue between the traffic engine's request
// streams (internal/workload) and the netem serving loop. A campaign
// cell first measures its shaped path (RunCampaign), then RunWorkload
// replays the spec's client streams over the bandwidth that path
// actually achieved — so every adverse-condition scenario is
// experienced by chat-like, batch-like and bursty clients instead of
// one synthetic flow.

import (
	"fmt"
	"sort"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/trace"
	"cloudvar/internal/workload"
)

// RunWorkload replays spec's client request streams over the measured
// series of one campaign cell and returns per-client latency metrics.
//
// Determinism contract: every client's arrivals come from
// substream("client/<id>") and the serving loop's RTT jitter from
// substream("serve"), all derived by the caller from the cell's
// identity — never from an advanced generator — so the result is
// bit-identical at any worker count and across resume boundaries, and
// distinct client IDs draw from independent substreams.
func RunWorkload(spec workload.Spec, series *trace.Series, p Profile, cfg CampaignConfig, substream func(name string) *simrand.Source) (*workload.CellMetrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if series == nil || len(series.Points) == 0 {
		return nil, fmt.Errorf("cloudmodel: workload replay needs a measured series")
	}

	env := netem.PathEnvelope{
		Times: make([]float64, len(series.Points)),
		Gbps:  make([]float64, len(series.Points)),
	}
	for i, pt := range series.Points {
		env.Times[i] = pt.TimeSec
		env.Gbps[i] = pt.BandwidthGbps
	}

	// Generate each client's stream from its own named substream, then
	// merge into one arrival-ordered request list. Ties break by spec
	// declaration order — a fixed rule, so the merge is deterministic.
	streams := make([][]float64, len(spec.Clients))
	total := 0
	for i, c := range spec.Clients {
		streams[i] = c.Stream(spec.AggregateRPS, cfg.DurationSec, substream("client/"+c.ID), nil)
		total += len(streams[i])
	}
	reqs := make([]netem.Request, 0, total)
	for i, ts := range streams {
		for _, t := range ts {
			reqs = append(reqs, netem.Request{TimeSec: t, Client: i})
		}
	}
	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].TimeSec != reqs[b].TimeSec {
			return reqs[a].TimeSec < reqs[b].TimeSec
		}
		return reqs[a].Client < reqs[b].Client
	})

	latencies, err := netem.ServeRequests(reqs, spec.RequestGbit(), env, p.VNIC, cfg.WriteBytes, substream("serve"))
	if err != nil {
		return nil, fmt.Errorf("cloudmodel: workload replay: %w", err)
	}

	out := &workload.CellMetrics{Clients: make([]workload.ClientMetrics, len(spec.Clients))}
	for i, c := range spec.Clients {
		out.Clients[i] = workload.ClientMetrics{
			ID:        c.ID,
			Class:     c.Class(),
			LatencyMs: make([]float64, 0, len(streams[i])),
		}
	}
	for i, r := range reqs {
		cm := &out.Clients[r.Client]
		cm.LatencyMs = append(cm.LatencyMs, latencies[i])
	}
	return out, nil
}
