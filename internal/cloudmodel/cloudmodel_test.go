package cloudmodel

import (
	"math"
	"testing"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
	"cloudvar/internal/tokenbucket"
	"cloudvar/internal/trace"
)

func TestBallaniCatalog(t *testing.T) {
	clouds := BallaniClouds()
	if len(clouds) != 8 {
		t.Fatalf("got %d clouds, want 8 (A-H)", len(clouds))
	}
	names := map[string]bool{}
	for _, c := range clouds {
		names[c.Name] = true
		// Percentiles must be non-decreasing.
		for i := 1; i < 5; i++ {
			if c.PercentilesMbps[i] < c.PercentilesMbps[i-1] {
				t.Errorf("cloud %s: percentile %d decreases", c.Name, i)
			}
		}
		// All within the paper's 0-1000 Mb/s axis.
		if c.PercentilesMbps[0] < 0 || c.PercentilesMbps[4] > 1000 {
			t.Errorf("cloud %s outside Figure 2 axis", c.Name)
		}
		if c.IQRMbps() < 0 {
			t.Errorf("cloud %s: negative IQR", c.Name)
		}
	}
	for _, want := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		if !names[want] {
			t.Errorf("missing cloud %s", want)
		}
	}
}

func TestBallaniCloudByName(t *testing.T) {
	c, err := BallaniCloudByName("F")
	if err != nil || c.Name != "F" {
		t.Errorf("lookup F: %v, %v", c, err)
	}
	if _, err := BallaniCloudByName("Z"); err == nil {
		t.Error("unknown cloud should error")
	}
}

func TestBallaniDistSampling(t *testing.T) {
	src := simrand.New(5)
	c, _ := BallaniCloudByName("C")
	dist := c.DistGbps()
	for i := 0; i < 1000; i++ {
		v := dist.Sample(src)
		if v < c.PercentilesMbps[0]/1000 || v > c.PercentilesMbps[4]/1000 {
			t.Fatalf("sample %g Gbps outside support", v)
		}
	}
	if med := c.Dist().Median(); med != c.MedianMbps() {
		t.Errorf("Dist median %g != catalog %g", med, c.MedianMbps())
	}
}

func TestEC2ProfileThrottles(t *testing.T) {
	p, err := EC2Profile("c5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cloud != "ec2" || p.VNIC.MTUBytes != 9000 {
		t.Errorf("unexpected profile %+v", p)
	}
	src := simrand.New(42)
	sh := p.NewShaper(src)
	// Drain long enough to deplete even a slow (5 Gbps) incarnation
	// with a generously jittered budget; the rate must then drop.
	first := sh.Rate(1e12)
	sh.Transfer(1e12, 4000)
	after := sh.Rate(1e12)
	if after >= first/2 {
		t.Errorf("no throttle after 4000 s: %g -> %g Gbps", first, after)
	}
}

func TestEC2ProfileUnknownInstance(t *testing.T) {
	if _, err := EC2Profile("m6i.32xlarge"); err == nil {
		t.Error("unknown instance should error")
	}
}

func TestGCEShaperWarmup(t *testing.T) {
	src := simrand.New(7)
	g := newGCEShaper(8, src)
	cold := g.Rate(1e12)
	g.Transfer(1e12, 60) // warm for a minute
	warm := g.Rate(1e12)
	if warm < cold {
		t.Errorf("warming decreased rate: %g -> %g", cold, warm)
	}
	if warm > 16*1.1 {
		t.Errorf("8-core GCE rate %g exceeds QoS 16 Gbps (+noise)", warm)
	}
	// Idling long enough resets to cold.
	g.Idle(30)
	recold := g.Rate(1e12)
	if recold > warm*1.05 {
		t.Errorf("idle did not reset warm-up: %g vs warm %g", recold, warm)
	}
}

// TestGCEAccessPatternDependence reproduces Figure 5's key shape:
// full-speed achieves stable high performance while 5-30 exhibits a
// long low tail.
func TestGCEAccessPatternDependence(t *testing.T) {
	p, err := GCEProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCampaignConfig(4 * 3600) // 4 emulated hours
	src := simrand.New(99)
	rc, err := RunAllRegimes(p, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	full := stats.Summarize(rc.Series["full-speed"].Bandwidths())
	burst := stats.Summarize(rc.Series["5-30"].Bandwidths())
	if full.Median < burst.Median {
		t.Errorf("full-speed median %g below 5-30 median %g", full.Median, burst.Median)
	}
	// Long lower tail: 5-30's p01 should sit far below its median.
	if burst.P01 > 0.85*burst.Median {
		t.Errorf("5-30 lacks a long tail: p01=%g median=%g", burst.P01, burst.Median)
	}
	// Full-speed is comparatively tight.
	if full.CoV > burst.CoV {
		t.Errorf("full-speed CoV %g exceeds 5-30 CoV %g", full.CoV, burst.CoV)
	}
	// Near the advertised 16 Gbps QoS.
	if full.Median < 13 || full.Median > 16.5 {
		t.Errorf("full-speed median %g outside the paper's 13-15.8 Gbps band", full.Median)
	}
}

func TestGCEProfileErrors(t *testing.T) {
	if _, err := GCEProfile(0); err == nil {
		t.Error("zero cores should error")
	}
}

func TestHPCCloudVariability(t *testing.T) {
	p, err := HPCCloudProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	src := simrand.New(3)
	s, err := RunCampaign(p, trace.FullSpeed, DefaultCampaignConfig(3600), src)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	// Figure 4: range ~7.7-10.4 Gbps.
	if sum.Min < 7.0 || sum.Max > 11.0 {
		t.Errorf("HPCCloud range [%g, %g] outside Figure 4's 7.7-10.4", sum.Min, sum.Max)
	}
	// Sample-to-sample steps can be large (paper: up to 33%).
	if s.MaxStepRatio() < 0.05 {
		t.Errorf("HPCCloud too smooth: max step %g", s.MaxStepRatio())
	}
}

func TestHPCCloudProfileErrors(t *testing.T) {
	for _, cores := range []int{0, 3, 16} {
		if _, err := HPCCloudProfile(cores); err == nil {
			t.Errorf("%d cores should error", cores)
		}
	}
}

func TestBallaniProfile(t *testing.T) {
	p, err := BallaniProfile("F", 5)
	if err != nil {
		t.Fatal(err)
	}
	src := simrand.New(11)
	sh := p.NewShaper(src)
	if r := sh.Rate(1e12); r <= 0 || r > 1 {
		t.Errorf("Ballani F rate %g Gbps outside (0, 1]", r)
	}
	if _, err := BallaniProfile("Z", 5); err == nil {
		t.Error("unknown cloud should error")
	}
	if _, err := BallaniProfile("A", 0); err == nil {
		t.Error("zero resample should error")
	}
}

// TestEC2RegimeSlowdowns reproduces Figure 6's headline: full-speed
// is ~7x slower than 5-30 and 10-30 is in between, because the
// token bucket rations a refill-limited budget.
func TestEC2RegimeSlowdowns(t *testing.T) {
	p, err := EC2Profile("c5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	// Pin the incarnation to nominal parameters for a deterministic
	// shape check: wrap NewShaper.
	p.NewShaper = func(src *simrand.Source) netem.Shaper {
		sh, err := netem.NewBucketShaper(tokenbucketNominal())
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	cfg := DefaultCampaignConfig(6 * 3600)
	src := simrand.New(17)
	rc, err := RunAllRegimes(p, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	slow := rc.SlowdownVsBest()
	if slow["5-30"] != 1 {
		t.Errorf("5-30 should be the fastest regime; slowdowns = %v", slow)
	}
	if slow["full-speed"] < 4 || slow["full-speed"] > 10 {
		t.Errorf("full-speed slowdown %g outside the ~7x ballpark", slow["full-speed"])
	}
	if slow["10-30"] < 1.2 || slow["10-30"] > 4 {
		t.Errorf("10-30 slowdown %g outside the ~2-3x ballpark", slow["10-30"])
	}
}

// TestEC2TrafficTotalsRoughlyEqual reproduces Figure 10a: on EC2 the
// three regimes move roughly the same total volume over a long
// campaign, because all are budget/refill-limited.
func TestEC2TrafficTotalsRoughlyEqual(t *testing.T) {
	p, err := EC2Profile("c5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	p.NewShaper = func(src *simrand.Source) netem.Shaper {
		sh, err := netem.NewBucketShaper(tokenbucketNominal())
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	cfg := DefaultCampaignConfig(24 * 3600)
	src := simrand.New(23)
	rc, err := RunAllRegimes(p, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]float64{}
	for name, s := range rc.Series {
		cum := s.CumulativeTrafficTB()
		totals[name] = cum[len(cum)-1]
	}
	lo, hi := math.Inf(1), 0.0
	for _, v := range totals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi > 1.6*lo {
		t.Errorf("EC2 totals should be roughly equal, got %v", totals)
	}
}

func tokenbucketNominal() tokenbucket.Params {
	return tokenbucket.Params{BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1}
}

func TestTable3Catalog(t *testing.T) {
	rows := Table3()
	if len(rows) != 11 {
		t.Fatalf("Table 3 has %d rows, want 11", len(rows))
	}
	featured := 0
	for _, e := range rows {
		if !e.ExhibitsVariability {
			t.Errorf("%s %s: paper found variability everywhere", e.Cloud, e.InstanceType)
		}
		if e.Featured {
			featured++
		}
		if e.Cloud == "HPCCloud" {
			if e.QoSString() != "N/A" {
				t.Errorf("HPCCloud QoS = %q", e.QoSString())
			}
		}
	}
	if featured != 3 {
		t.Errorf("%d featured rows, want 3 (the * rows)", featured)
	}
	// The c5.XL row prints its <= QoS.
	if got := rows[0].QoSString(); got != "<= 10" {
		t.Errorf("c5.XL QoS = %q", got)
	}
}

func TestTable3Profiles(t *testing.T) {
	for _, e := range Table3() {
		p, err := e.Profile()
		if err != nil {
			t.Errorf("%s %s: %v", e.Cloud, e.InstanceType, err)
			continue
		}
		src := simrand.New(1)
		sh := p.NewShaper(src)
		if r := sh.Rate(1e12); r <= 0 {
			t.Errorf("%s %s: zero initial rate", e.Cloud, e.InstanceType)
		}
	}
}

func TestTotals(t *testing.T) {
	tot := Totals()
	if tot.Entries != 11 {
		t.Errorf("entries = %d", tot.Entries)
	}
	// 4×21 + 2×1 + 3×21(GCE is 4 rows of 21)... compute: Amazon
	// 21+21+1+1 = 44 days; Google 21×4 = 84; HPCCloud 7×3 = 21.
	// Total 149 days ≈ 21.3 weeks — "over 21 weeks" in the abstract.
	if tot.Weeks < 21 || tot.Weeks > 22 {
		t.Errorf("campaign weeks = %g, want ~21.3", tot.Weeks)
	}
	wantCost := 171.0 + 193 + 73 + 153 + 34 + 67 + 135 + 269
	if math.Abs(tot.TotalCostUSD-wantCost) > 1e-9 {
		t.Errorf("cost = %g, want %g", tot.TotalCostUSD, wantCost)
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	bad := []CampaignConfig{
		{DurationSec: 0, BinSec: 10, WriteBytes: 1},
		{DurationSec: 10, BinSec: 0, WriteBytes: 1},
		{DurationSec: 10, BinSec: 10, WriteBytes: 0},
		{DurationSec: 10, BinSec: 10, WriteBytes: 1, RTTSamplesPerBin: -1},
	}
	p, _ := HPCCloudProfile(8)
	src := simrand.New(1)
	for i, cfg := range bad {
		if _, err := RunCampaign(p, trace.FullSpeed, cfg, src); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
	badRegime := trace.Regime{Name: "bad", SendSec: -1}
	if _, err := RunCampaign(p, badRegime, DefaultCampaignConfig(100), src); err == nil {
		t.Error("bad regime should error")
	}
}

func TestCampaignSeriesShape(t *testing.T) {
	p, _ := HPCCloudProfile(8)
	src := simrand.New(2)
	s, err := RunCampaign(p, trace.Send10R30, DefaultCampaignConfig(400), src)
	if err != nil {
		t.Fatal(err)
	}
	// 400 s of 40 s cycles: 10 bursts.
	if len(s.Points) != 10 {
		t.Errorf("got %d burst points, want 10", len(s.Points))
	}
	if s.IntervalSec != 10 {
		t.Errorf("burst series interval = %g, want 10 (send phase)", s.IntervalSec)
	}
	for i, pt := range s.Points {
		if wantT := float64(i) * 40; pt.TimeSec != wantT {
			t.Errorf("point %d at %g, want %g", i, pt.TimeSec, wantT)
		}
		if pt.CPUFrac < 0 || pt.CPUFrac > 1 {
			t.Errorf("CPU fraction %g out of range", pt.CPUFrac)
		}
	}
}

// TestRunAllRegimesParallelDeterminism proves the parallel regime fan-
// out is bit-identical to a sequential run of the same substreams, at
// any worker count.
func TestRunAllRegimesParallelDeterminism(t *testing.T) {
	p, err := EC2Profile("c5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCampaignConfig(300)

	// Reference: the pre-fleet sequential loop.
	want := map[string]*trace.Series{}
	src := simrand.New(11)
	for _, regime := range trace.Regimes() {
		s, err := RunCampaign(p, regime, cfg, src.Substream("campaign/"+regime.Name))
		if err != nil {
			t.Fatal(err)
		}
		want[regime.Name] = s
	}

	for _, workers := range []int{1, 3, 8} {
		rc, err := RunAllRegimesWorkers(p, cfg, simrand.New(11), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rc.Series) != len(want) {
			t.Fatalf("workers=%d: %d series, want %d", workers, len(rc.Series), len(want))
		}
		for name, ws := range want {
			got := rc.Series[name]
			if got == nil {
				t.Fatalf("workers=%d: missing regime %s", workers, name)
			}
			if len(got.Points) != len(ws.Points) {
				t.Fatalf("workers=%d: regime %s has %d points, want %d",
					workers, name, len(got.Points), len(ws.Points))
			}
			for i := range ws.Points {
				if got.Points[i] != ws.Points[i] {
					t.Fatalf("workers=%d: regime %s point %d = %+v, want %+v",
						workers, name, i, got.Points[i], ws.Points[i])
				}
			}
		}
	}
}
