package stats

import (
	"math"
	"sort"
	"testing"

	"cloudvar/internal/simrand"
)

// The reference implementations below are verbatim copies of the
// pre-Sample copy-and-sort-per-call algorithms. The property tests
// assert the Sample-backed package functions and the Sample methods
// answer bit-identically to them across randomized inputs, including
// the NaN / empty / single-element edges — the contract that keeps
// every golden artifact byte-stable across the allocation-free
// rewrite.

func refQuantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

func refPercentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = QuantileSorted(sorted, p)
	}
	return out
}

func refSummarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.StdDev, s.CoV = nan, nan, nan
		s.Min, s.P01, s.P25, s.Median, s.P75, s.P90, s.P99, s.Max = nan, nan, nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.CoV = CoefficientOfVariation(xs)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P01 = QuantileSorted(sorted, 0.01)
	s.P25 = QuantileSorted(sorted, 0.25)
	s.Median = QuantileSorted(sorted, 0.50)
	s.P75 = QuantileSorted(sorted, 0.75)
	s.P90 = QuantileSorted(sorted, 0.90)
	s.P99 = QuantileSorted(sorted, 0.99)
	return s
}

func refQuantileCI(xs []float64, q, conf float64) (Interval, error) {
	n := len(xs)
	iv := Interval{Confidence: conf, N: n}
	if n == 0 {
		return iv, ErrInsufficientData
	}
	if q <= 0 || q >= 1 {
		return iv, errQuantileRange(q)
	}
	if conf <= 0 || conf >= 1 {
		return iv, errConfidenceRange(conf)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	iv.Estimate = QuantileSorted(sorted, q)
	alpha := 1 - conf
	l, u, achievable := quantileOrderIndices(n, q, alpha)
	if !achievable {
		return iv, errCIUnachievable(n, conf, q)
	}
	iv.Lo = sorted[l-1]
	iv.Hi = sorted[u-1]
	return iv, nil
}

// sameFloat reports bit-level agreement modulo NaN (any NaN equals any
// NaN: quantile interpolation can produce NaNs with different
// payloads, which no serialiser distinguishes).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameInterval(a, b Interval) bool {
	return sameFloat(a.Estimate, b.Estimate) && sameFloat(a.Lo, b.Lo) &&
		sameFloat(a.Hi, b.Hi) && a.Confidence == b.Confidence && a.N == b.N
}

// randomInputs generates the property-test corpus: sizes spanning the
// edges (empty, single element, two, odd, even, large), values
// including duplicates, negatives, zeros and NaNs.
func randomInputs(t *testing.T) [][]float64 {
	t.Helper()
	src := simrand.New(20260729)
	inputs := [][]float64{
		nil,
		{},
		{3.5},
		{math.NaN()},
		{1, 1},
		{math.Inf(1), math.Inf(-1), 0},
		{math.NaN(), 2, math.NaN(), 1},
	}
	for _, n := range []int{2, 3, 5, 17, 64, 501} {
		for rep := 0; rep < 8; rep++ {
			xs := make([]float64, n)
			for i := range xs {
				switch src.Intn(10) {
				case 0:
					xs[i] = 0
				case 1:
					xs[i] = -src.Float64() * 100
				case 2:
					xs[i] = math.Floor(src.Float64() * 4) // duplicates
				default:
					xs[i] = src.Normal(100, 25)
				}
			}
			if rep == 7 && n > 2 {
				xs[src.Intn(n)] = math.NaN()
			}
			inputs = append(inputs, xs)
		}
	}
	return inputs
}

func TestSampleEquivalenceQuantile(t *testing.T) {
	ps := []float64{-0.1, 0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 1.1, math.NaN()}
	var s Sample
	for _, xs := range randomInputs(t) {
		s.Reset(xs)
		for _, p := range ps {
			want := refQuantile(xs, p)
			if got := Quantile(xs, p); !sameFloat(got, want) {
				t.Fatalf("Quantile(n=%d, p=%g) = %x, reference %x", len(xs), p, got, want)
			}
			// The Sample method diverges from the package function only
			// in the degenerate cases the wrapper rejects up front.
			if len(xs) > 0 && p >= 0 && p <= 1 && !math.IsNaN(p) {
				if got := s.Quantile(p); !sameFloat(got, want) {
					t.Fatalf("Sample.Quantile(n=%d, p=%g) = %x, reference %x", len(xs), p, got, want)
				}
			}
		}
	}
}

func TestSampleEquivalencePercentiles(t *testing.T) {
	ps := []float64{0.01, 0.1, 0.5, 0.9, 0.99}
	var s Sample
	for _, xs := range randomInputs(t) {
		want := refPercentiles(xs, ps...)
		got := Percentiles(xs, ps...)
		if len(got) != len(want) {
			t.Fatalf("Percentiles length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("Percentiles(n=%d)[%d] = %x, reference %x", len(xs), i, got[i], want[i])
			}
		}
		if len(xs) > 0 {
			sGot := s.Reset(xs).Percentiles(nil, ps...)
			for i := range want {
				if !sameFloat(sGot[i], want[i]) {
					t.Fatalf("Sample.Percentiles(n=%d)[%d] = %x, reference %x", len(xs), i, sGot[i], want[i])
				}
			}
		}
	}
}

func TestSampleEquivalenceSummarize(t *testing.T) {
	var s Sample
	for _, xs := range randomInputs(t) {
		want := refSummarize(xs)
		for name, got := range map[string]Summary{
			"Summarize":      Summarize(xs),
			"Sample.Summary": s.Reset(xs).Summary(),
		} {
			if got.N != want.N ||
				!sameFloat(got.Mean, want.Mean) || !sameFloat(got.StdDev, want.StdDev) ||
				!sameFloat(got.CoV, want.CoV) || !sameFloat(got.Min, want.Min) ||
				!sameFloat(got.P01, want.P01) || !sameFloat(got.P25, want.P25) ||
				!sameFloat(got.Median, want.Median) || !sameFloat(got.P75, want.P75) ||
				!sameFloat(got.P90, want.P90) || !sameFloat(got.P99, want.P99) ||
				!sameFloat(got.Max, want.Max) {
				t.Fatalf("%s(n=%d) = %+v, reference %+v", name, len(xs), got, want)
			}
		}
	}
}

func TestSampleEquivalenceQuantileCI(t *testing.T) {
	var s Sample
	for _, xs := range randomInputs(t) {
		for _, q := range []float64{-1, 0, 0.5, 0.9, 1} {
			for _, conf := range []float64{0, 0.8, 0.95, 1} {
				want, wantErr := refQuantileCI(xs, q, conf)
				got, gotErr := QuantileCI(xs, q, conf)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("QuantileCI(n=%d, q=%g, conf=%g) err = %v, reference %v", len(xs), q, conf, gotErr, wantErr)
				}
				if wantErr != nil && gotErr.Error() != wantErr.Error() {
					t.Fatalf("QuantileCI(n=%d, q=%g, conf=%g) error text %q, reference %q", len(xs), q, conf, gotErr, wantErr)
				}
				if !sameInterval(got, want) {
					t.Fatalf("QuantileCI(n=%d, q=%g, conf=%g) = %+v, reference %+v", len(xs), q, conf, got, want)
				}
				sGot, sErr := s.Reset(xs).QuantileCI(q, conf)
				if (wantErr == nil) != (sErr == nil) || !sameInterval(sGot, want) {
					t.Fatalf("Sample.QuantileCI(n=%d, q=%g, conf=%g) = %+v (%v), reference %+v (%v)", len(xs), q, conf, sGot, sErr, want, wantErr)
				}
			}
		}
	}
}

// TestSamplePushEquivalence grows a sample one observation at a time
// and checks every prefix answers identically to a from-scratch sort
// of that prefix — the CONFIRM usage pattern.
func TestSamplePushEquivalence(t *testing.T) {
	src := simrand.New(7)
	seq := make([]float64, 120)
	for i := range seq {
		seq[i] = src.Normal(50, 20)
	}
	seq[13] = math.NaN()
	seq[14] = math.NaN()
	seq[40] = seq[39] // duplicate
	var s Sample
	for i, x := range seq {
		s.Push(x)
		prefix := seq[:i+1]
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if got, want := s.Quantile(p), refQuantile(prefix, p); !sameFloat(got, want) {
				t.Fatalf("prefix %d: Push-built Quantile(%g) = %x, sorted-from-scratch %x", i+1, p, got, want)
			}
		}
		want, wantErr := refQuantileCI(prefix, 0.5, 0.95)
		got, gotErr := s.MedianCI(0.95)
		if (wantErr == nil) != (gotErr == nil) || !sameInterval(got, want) {
			t.Fatalf("prefix %d: Push-built MedianCI = %+v (%v), reference %+v (%v)", i+1, got, gotErr, want, wantErr)
		}
	}
}

func TestSampleECDFAndHistogram(t *testing.T) {
	src := simrand.New(99)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	s := NewSample(xs)
	e := NewECDF(xs)
	for _, x := range []float64{-3, -0.5, 0, 0.5, 3, xs[17]} {
		if got, want := s.CDF(x), e.At(x); !sameFloat(got, want) {
			t.Fatalf("CDF(%g) = %x, ECDF.At %x", x, got, want)
		}
	}
	for _, max := range []int{1, 5, 64, 257, 1000} {
		wv, wf := e.Points(max)
		gv, gf := s.ECDFPoints(max, nil, nil)
		if len(gv) != len(wv) {
			t.Fatalf("ECDFPoints(%d) returned %d values, ECDF.Points %d", max, len(gv), len(wv))
		}
		for i := range wv {
			if !sameFloat(gv[i], wv[i]) || !sameFloat(gf[i], wf[i]) {
				t.Fatalf("ECDFPoints(%d)[%d] = (%x, %x), ECDF.Points (%x, %x)", max, i, gv[i], gf[i], wv[i], wf[i])
			}
		}
	}
	// Wrapped ECDF shares the buffer.
	we := SampleECDF(s)
	if we.N() != s.N() || we.Quantile(0.5) != s.Median() {
		t.Fatalf("SampleECDF disagrees with its Sample")
	}

	want := NewHistogram(xs, -3, 3, 12)
	got := &Histogram{Lo: -3, Hi: 3, Counts: make([]int, 12)}
	s.FillHistogram(got)
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("FillHistogram bucket %d = %d, NewHistogram %d", i, got.Counts[i], want.Counts[i])
		}
	}
	// Refill reuses the buffer and must not accumulate.
	s.FillHistogram(got)
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("second FillHistogram bucket %d = %d, want %d", i, got.Counts[i], want.Counts[i])
		}
	}
}

// TestSampleResetReusesBuffer pins the allocation contract: steady-
// state Reset+query performs no allocation once the buffer has grown.
func TestSampleResetReusesBuffer(t *testing.T) {
	src := simrand.New(5)
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = src.Float64()
	}
	var s Sample
	s.Reset(xs) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset(xs)
		if s.Median() <= 0 {
			t.Fatal("bad median")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset allocated %.1f times per run, want 0", allocs)
	}
}

// TestSampleBootstrapScratch pins the bootstrap scratch reuse and the
// statistical sanity of the interval (the draw order differs from the
// package function, so bit-identity is out of scope by design).
func TestSampleBootstrapScratch(t *testing.T) {
	src := simrand.New(31)
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = src.Normal(100, 10)
	}
	s := NewSample(xs)
	bs := simrand.New(32)
	iv, err := s.BootstrapCI(Median, 0.95, 400, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo < iv.Estimate && iv.Estimate < iv.Hi) {
		t.Fatalf("bootstrap interval %v does not bracket its estimate", iv)
	}
	if iv.Lo < 90 || iv.Hi > 110 {
		t.Fatalf("bootstrap interval %v implausibly wide for N(100,10) n=60", iv)
	}
	// The scratch path itself is allocation-free; allocations inside
	// the caller's statistic (Median copies per call) are its own.
	if _, err := s.BootstrapCI(Mean, 0.95, 400, bs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.BootstrapCI(Mean, 0.95, 400, bs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state BootstrapCI allocated %.1f times per run, want 0", allocs)
	}
	// Degenerate inputs report the same errors as the package function.
	if _, err := NewSample([]float64{1}).BootstrapCI(Median, 0.95, 400, bs); err == nil {
		t.Fatal("BootstrapCI on n=1 should fail")
	}
	if _, err := s.BootstrapCI(Median, 0.95, 5, bs); err == nil || err.Error() != errTooFewResamples(5).Error() {
		t.Fatalf("BootstrapCI with 5 resamples: %v", err)
	}
}
