package stats

import (
	"math"
	"testing"

	"cloudvar/internal/simrand"
)

func TestShapiroWilkAcceptsNormal(t *testing.T) {
	src := simrand.New(101)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = src.Normal(10, 2)
		}
		res, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Statistic < 0.8 || res.Statistic > 1 {
			t.Errorf("W = %g outside plausible range for normal data", res.Statistic)
		}
		if res.RejectAt05 {
			rejections++
		}
	}
	// Expect ~5% type-I error; tolerate up to 20%.
	if rejections > trials/5 {
		t.Errorf("rejected normality %d/%d times on normal data", rejections, trials)
	}
}

func TestShapiroWilkRejectsExponential(t *testing.T) {
	src := simrand.New(103)
	rejections := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = src.Exponential(1)
		}
		res, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.RejectAt05 {
			rejections++
		}
	}
	if rejections < trials*3/4 {
		t.Errorf("only rejected exponential data %d/%d times", rejections, trials)
	}
}

func TestShapiroWilkRejectsBimodal(t *testing.T) {
	// Token-bucket throttling produces bimodal runtimes (high-rate vs
	// low-rate phases); Shapiro-Wilk must flag these.
	src := simrand.New(105)
	xs := make([]float64, 80)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = src.Normal(10, 0.5)
		} else {
			xs[i] = src.Normal(70, 0.5)
		}
	}
	res, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("failed to reject clearly bimodal sample: %v", res)
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Error("n=2 should error")
	}
	if _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Error("constant sample should error")
	}
	big := make([]float64, 5001)
	for i := range big {
		big[i] = float64(i)
	}
	if _, err := ShapiroWilk(big); err == nil {
		t.Error("n>5000 should error")
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	// Exercise the n=3 exact branch and the 4<=n<=11 branch.
	res, err := ShapiroWilk([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Errorf("n=3 p-value %g out of range", res.PValue)
	}
	res, err = ShapiroWilk([]float64{1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Errorf("n=7 p-value %g out of range", res.PValue)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	src := simrand.New(201)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = src.Normal(5, 1)
			ys[i] = src.Normal(5, 1)
		}
		res, err := MannWhitneyU(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.RejectAt05 {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("type-I error too high: %d/%d", rejections, trials)
	}
}

func TestMannWhitneyShiftedDistribution(t *testing.T) {
	src := simrand.New(203)
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = src.Normal(5, 1)
		ys[i] = src.Normal(7, 1) // clearly shifted
	}
	res, err := MannWhitneyU(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("failed to detect 2-sigma shift: %v", res)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavily tied data must not blow up the variance computation.
	xs := []float64{1, 1, 1, 2, 2}
	ys := []float64{1, 2, 2, 2, 3}
	res, err := MannWhitneyU(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PValue) || res.PValue < 0 || res.PValue > 1 {
		t.Errorf("tied-data p-value %g invalid", res.PValue)
	}
}

func TestMannWhitneyAllIdentical(t *testing.T) {
	res, err := MannWhitneyU([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Errorf("identical samples p = %g, want 1", res.PValue)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("n1=1 should error")
	}
}

func TestIndependenceCheckDetectsDrift(t *testing.T) {
	// A drifting sequence (like Figure 19's Q65 under a depleting
	// bucket) must be flagged.
	src := simrand.New(301)
	drifting := make([]float64, 60)
	for i := range drifting {
		drifting[i] = 10 + float64(i)*0.5 + src.Normal(0, 0.5)
	}
	res, err := IndependenceCheck(drifting)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("failed to detect drift: %v", res)
	}

	stable := make([]float64, 60)
	for i := range stable {
		stable[i] = 10 + src.Normal(0, 0.5)
	}
	res, err = IndependenceCheck(stable)
	if err != nil {
		t.Fatal(err)
	}
	// Stable data should usually pass (can fail 5% of the time, but
	// with this seed it passes).
	if res.RejectAt05 {
		t.Errorf("flagged stable sequence as dependent: %v", res)
	}

	if _, err := IndependenceCheck([]float64{1, 2, 3}); err == nil {
		t.Error("too-short sequence should error")
	}
}

func TestADFStationarySeries(t *testing.T) {
	// AR(1) with coefficient 0.5: strongly stationary.
	src := simrand.New(401)
	n := 300
	series := make([]float64, n)
	for i := 1; i < n; i++ {
		series[i] = 0.5*series[i-1] + src.Normal(0, 1)
	}
	res, err := ADF(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary {
		t.Errorf("AR(0.5) not detected stationary: %v", res)
	}
}

func TestADFRandomWalk(t *testing.T) {
	// Random walk has a unit root: must NOT be called stationary.
	src := simrand.New(403)
	n := 300
	series := make([]float64, n)
	for i := 1; i < n; i++ {
		series[i] = series[i-1] + src.Normal(0, 1)
	}
	res, err := ADF(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary {
		t.Errorf("random walk flagged stationary: %v", res)
	}
}

func TestADFAutoLags(t *testing.T) {
	src := simrand.New(405)
	series := make([]float64, 200)
	for i := 1; i < len(series); i++ {
		series[i] = 0.3*series[i-1] + src.Normal(0, 1)
	}
	res, err := ADF(series, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantLags := int(12 * math.Pow(200.0/100, 0.25))
	if res.Lags != wantLags {
		t.Errorf("auto lags = %d, want %d", res.Lags, wantLags)
	}
}

func TestADFErrors(t *testing.T) {
	if _, err := ADF([]float64{1, 2, 3}, 1); err == nil {
		t.Error("short series should error")
	}
	constant := make([]float64, 50)
	if _, err := ADF(constant, 1); err == nil {
		t.Error("constant series should error")
	}
}

func TestADFCriticalValueInterpolation(t *testing.T) {
	cv25 := adfCriticalValues(25)
	cv50 := adfCriticalValues(50)
	cv37 := adfCriticalValues(37)
	for i := 0; i < 3; i++ {
		if cv37[i] < cv25[i]-1e-9 || cv37[i] > cv50[i]+1e-9 {
			t.Errorf("interpolated cv[%d]=%g outside [%g, %g]", i, cv37[i], cv25[i], cv50[i])
		}
	}
	cvBig := adfCriticalValues(100000)
	if cvBig[1] != -2.86 {
		t.Errorf("asymptotic 5%% cv = %g, want -2.86", cvBig[1])
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating series: lag-1 autocorrelation near -1.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if r := Autocorrelation(alt, 1); r > -0.9 {
		t.Errorf("alternating lag-1 autocorr = %g, want near -1", r)
	}
	if r := Autocorrelation(alt, 2); r < 0.9 {
		t.Errorf("alternating lag-2 autocorr = %g, want near +1", r)
	}
	if r := Autocorrelation(alt, 0); math.Abs(r-1) > 1e-12 {
		t.Errorf("lag-0 autocorr = %g, want 1", r)
	}
	if !math.IsNaN(Autocorrelation(alt, -1)) || !math.IsNaN(Autocorrelation(alt, 100)) {
		t.Error("out-of-range lag should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{5, 5, 5}, 1)) {
		t.Error("constant series autocorr should be NaN")
	}
}

func TestOLSExactFit(t *testing.T) {
	// y = 2 + 3x fits exactly.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Coefficients[0], 2, 1e-9) || !almostEqual(fit.Coefficients[1], 3, 1e-9) {
		t.Errorf("coefficients = %v, want [2 3]", fit.Coefficients)
	}
	if fit.RSS > 1e-15 {
		t.Errorf("RSS = %g for exact fit", fit.RSS)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %g for exact fit", fit.R2)
	}
}

func TestOLSRecoverySlopeNoise(t *testing.T) {
	src := simrand.New(501)
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / 10
		X[i] = []float64{1, x}
		y[i] = 4 + 1.5*x + src.Normal(0, 0.5)
	}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coefficients[1]-1.5) > 0.05 {
		t.Errorf("slope = %g, want ~1.5", fit.Coefficients[1])
	}
	if fit.StdErrors[1] <= 0 {
		t.Errorf("slope std error = %g", fit.StdErrors[1])
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := OLS([][]float64{{1, 0}, {0, 1}}, []float64{1, 2}); err == nil {
		t.Error("n <= k should error")
	}
	// Collinear columns.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	if _, err := OLS(X, []float64{1, 2, 3, 4}); err == nil {
		t.Error("singular design should error")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9}
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) {
		t.Errorf("fit = (%g, %g), want (1, 2)", a, b)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestCohenKappa(t *testing.T) {
	// Perfect agreement.
	a := []string{"x", "y", "x", "z"}
	k, err := CohenKappa(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 1, 1e-12) {
		t.Errorf("perfect agreement kappa = %g", k)
	}

	// Known worked example: 2x2 with po=0.7, pe=0.5 -> kappa=0.4.
	r1 := []int{1, 1, 1, 1, 1, 0, 0, 0, 0, 0}
	r2 := []int{1, 1, 1, 0, 0, 0, 0, 0, 1, 1}
	// agreements: idx0,1,2 (1=1), idx5,6,7 (0=0), disagreements 4.
	// po = 7/10? count: idx0(1,1)a idx1(1,1)a idx2(1,1)a idx3(1,0)d
	// idx4(1,0)d idx5(0,0)a idx6(0,0)a idx7(0,0)a idx8(0,1)d idx9(0,1)d
	// po = 6/10. pA(1)=0.5, pB(1)=0.5 -> pe = 0.5. kappa = 0.2.
	k, err = CohenKappa(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 0.2, 1e-12) {
		t.Errorf("kappa = %g, want 0.2", k)
	}
}

func TestCohenKappaErrors(t *testing.T) {
	if _, err := CohenKappa([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := CohenKappa[int](nil, nil); err == nil {
		t.Error("empty should error")
	}
	// Single identical label: defined as 1 by convention.
	k, err := CohenKappa([]int{7, 7}, []int{7, 7})
	if err != nil || k != 1 {
		t.Errorf("uniform identical labels: k=%g err=%v", k, err)
	}
}

func TestKappaInterpretation(t *testing.T) {
	cases := []struct {
		k    float64
		want string
	}{
		{-0.1, "less than chance agreement"},
		{0.1, "slight agreement"},
		{0.3, "fair agreement"},
		{0.5, "moderate agreement"},
		{0.7, "substantial agreement"},
		{0.95, "almost perfect agreement"},
	}
	for _, c := range cases {
		if got := KappaInterpretation(c.k); got != c.want {
			t.Errorf("KappaInterpretation(%g) = %q, want %q", c.k, got, c.want)
		}
	}
}

func BenchmarkMedianCI(b *testing.B) {
	xs := normalSample(1, 50, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = MedianCI(xs, 0.95)
	}
}

func BenchmarkQuantile(b *testing.B) {
	xs := normalSample(2, 10000, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Quantile(xs, 0.9)
	}
}

func BenchmarkShapiroWilk(b *testing.B) {
	xs := normalSample(3, 100, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ShapiroWilk(xs)
	}
}
