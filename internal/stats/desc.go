// Package stats implements the statistical machinery the paper's
// methodology depends on: descriptive summaries, quantiles and ECDFs,
// nonparametric confidence intervals for medians and tail quantiles
// (Le Boudec's binomial order-statistic method), bootstrap intervals,
// Cohen's Kappa for inter-rater agreement, and the hypothesis tests the
// paper recommends running on performance samples (Shapiro-Wilk
// normality, Mann-Whitney independence-of-halves, augmented
// Dickey-Fuller stationarity).
//
// All functions are pure and deterministic; anything requiring
// randomness (bootstrap) takes an explicit *simrand.Source.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN when
// fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns the ratio of the sample standard
// deviation to the mean, as a fraction (not percent). The paper plots
// this for the EC2 access regimes in Figure 6. Returns NaN when the
// mean is zero or there are fewer than two samples.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return StdDev(xs) / math.Abs(m)
}

// MinMax returns the smallest and largest values in xs. It returns
// NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Welford accumulates streaming mean and variance without storing the
// samples. The zero value is ready to use. It is the right tool for the
// week-long 10-second-binned traces of Section 3, where storing every
// point in memory for summary statistics would be wasteful.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any observation.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased variance, or NaN before two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or NaN before any observation.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN before any observation.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge combines another accumulator into w (Chan et al.'s parallel
// update), as if w had also seen every observation other saw. Exact up
// to floating-point rounding; other is unchanged.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	na, nb := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	w.mean += delta * nb / (na + nb)
	w.m2 += other.m2 + delta*delta*na*nb/(na+nb)
	w.n += other.n
}

// CoV returns the running coefficient of variation (fractional).
func (w *Welford) CoV() float64 {
	m := w.Mean()
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return w.StdDev() / math.Abs(m)
}

// Summary is a five-number-plus summary of a sample, the statistical
// fingerprint the paper says every cloud experiment report should
// include (F2.2: mean or median alone is under-specification).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CoV    float64 // fractional coefficient of variation
	Min    float64
	P01    float64 // 1st percentile (box-whisker lower whisker in the paper's figures)
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64 // 99th percentile (upper whisker)
	Max    float64
}

// Summarize computes a Summary of xs. It copies and sorts internally;
// loops that summarise many slices should Reset a Sample instead.
func Summarize(xs []float64) Summary {
	var s Sample
	return s.Reset(xs).Summary()
}

// IQR returns the interquartile range of the sample.
func IQR(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}
