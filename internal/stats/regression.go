package stats

import (
	"fmt"
	"math"
)

// OLSFit is the result of an ordinary-least-squares regression.
type OLSFit struct {
	Coefficients []float64
	StdErrors    []float64
	Residuals    []float64
	RSS          float64 // residual sum of squares
	R2           float64
}

// OLS fits y = X·β by ordinary least squares via the normal equations,
// solved with partially pivoted Gaussian elimination. X is row-major
// with one row per observation (include a column of ones for an
// intercept). Standard errors come from σ²·(XᵀX)⁻¹ with
// σ² = RSS/(n-k).
//
// It is used by the ADF stationarity test and by the token-bucket
// parameter-inference fits of Figure 11.
func OLS(X [][]float64, y []float64) (OLSFit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return OLSFit{}, fmt.Errorf("stats: OLS needs matching non-empty X (%d rows) and y (%d)", n, len(y))
	}
	k := len(X[0])
	if k == 0 {
		return OLSFit{}, fmt.Errorf("stats: OLS needs at least one regressor")
	}
	if n <= k {
		return OLSFit{}, fmt.Errorf("stats: OLS needs n > k (n=%d, k=%d): %w", n, k, ErrInsufficientData)
	}
	for i, row := range X {
		if len(row) != k {
			return OLSFit{}, fmt.Errorf("stats: OLS row %d has %d columns, want %d", i, len(row), k)
		}
	}

	// Normal equations: A = XᵀX (k×k), b = Xᵀy.
	A := make([][]float64, k)
	for i := range A {
		A[i] = make([]float64, k)
	}
	b := make([]float64, k)
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			xi := X[r][i]
			b[i] += xi * y[r]
			for j := i; j < k; j++ {
				A[i][j] += xi * X[r][j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}

	inv, err := invertMatrix(A)
	if err != nil {
		return OLSFit{}, fmt.Errorf("stats: OLS normal equations singular: %w", err)
	}

	beta := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			beta[i] += inv[i][j] * b[j]
		}
	}

	fit := OLSFit{Coefficients: beta}
	fit.Residuals = make([]float64, n)
	meanY := Mean(y)
	tss := 0.0
	for r := 0; r < n; r++ {
		pred := 0.0
		for i := 0; i < k; i++ {
			pred += X[r][i] * beta[i]
		}
		fit.Residuals[r] = y[r] - pred
		fit.RSS += fit.Residuals[r] * fit.Residuals[r]
		d := y[r] - meanY
		tss += d * d
	}
	if tss > 0 {
		fit.R2 = 1 - fit.RSS/tss
	}

	sigma2 := fit.RSS / float64(n-k)
	fit.StdErrors = make([]float64, k)
	for i := 0; i < k; i++ {
		fit.StdErrors[i] = math.Sqrt(sigma2 * inv[i][i])
	}
	return fit, nil
}

// invertMatrix inverts a square matrix by Gauss-Jordan elimination
// with partial pivoting. It destroys its input.
func invertMatrix(a [][]float64) ([][]float64, error) {
	n := len(a)
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = make([]float64, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("matrix singular at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]

		p := a[col][col]
		for j := 0; j < n; j++ {
			a[col][j] /= p
			inv[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, nil
}

// LinearFit fits y = a + b·x and returns the intercept and slope, a
// convenience wrapper over OLS for the two-variable case.
func LinearFit(x, y []float64) (intercept, slope float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("stats: LinearFit length mismatch (%d vs %d)", len(x), len(y))
	}
	X := make([][]float64, len(x))
	for i := range x {
		X[i] = []float64{1, x[i]}
	}
	fit, err := OLS(X, y)
	if err != nil {
		return 0, 0, err
	}
	return fit.Coefficients[0], fit.Coefficients[1], nil
}
