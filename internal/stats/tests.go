package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyU tests the null hypothesis that two independent samples
// come from the same distribution (two-sided), using the normal
// approximation with tie correction and continuity correction. The
// paper (F5.4) cites Mann-Whitney [45] as the recommended check that
// one half of a measurement sequence is not stochastically larger than
// the other — a symptom of broken independence, exactly what depleting
// token buckets cause in Figure 19.
func MannWhitneyU(xs, ys []float64) (TestResult, error) {
	n1, n2 := len(xs), len(ys)
	res := TestResult{N: n1 + n2}
	if n1 < 2 || n2 < 2 {
		return res, fmt.Errorf("stats: Mann-Whitney needs both samples >= 2: %w", ErrInsufficientData)
	}

	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie accounting.
	n := len(all)
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	u2 := float64(n1)*float64(n2) - u1
	u := math.Min(u1, u2)
	res.Statistic = u

	mu := float64(n1) * float64(n2) / 2
	nf := float64(n)
	varU := float64(n1) * float64(n2) / 12 *
		((nf + 1) - tieCorrection/(nf*(nf-1)))
	if varU <= 0 {
		// All observations identical: no evidence against the null.
		res.PValue = 1
		return res, nil
	}
	// Continuity correction of 0.5 toward the mean.
	z := (u - mu + 0.5) / math.Sqrt(varU)
	res.PValue = 2 * NormalCDF(z)
	if res.PValue > 1 {
		res.PValue = 1
	}
	res.RejectAt05 = res.PValue < 0.05
	return res, nil
}

// IndependenceCheck splits a measurement sequence into first and second
// halves and runs Mann-Whitney between them. A rejection indicates the
// sequence drifts over time (repetitions are not identically
// distributed), which is the paper's Figure 19 pathology.
func IndependenceCheck(sequence []float64) (TestResult, error) {
	if len(sequence) < 4 {
		return TestResult{N: len(sequence)}, fmt.Errorf("stats: independence check needs >= 4 points: %w", ErrInsufficientData)
	}
	half := len(sequence) / 2
	return MannWhitneyU(sequence[:half], sequence[half:])
}

// ADFResult is the outcome of an augmented Dickey-Fuller unit-root test.
type ADFResult struct {
	Statistic float64 // t-statistic on the lagged level coefficient
	Lags      int
	N         int // effective observations in the regression
	// Stationary reports rejection of the unit-root null at 5%:
	// the series mean-reverts (is stationary) rather than wandering.
	Stationary bool
	// CriticalValues at 1%, 5%, 10% for the constant-only model,
	// interpolated for the effective sample size.
	CriticalValues [3]float64
}

func (r ADFResult) String() string {
	return fmt.Sprintf("ADF t=%.3f lags=%d n=%d stationary(5%%)=%v", r.Statistic, r.Lags, r.N, r.Stationary)
}

// adfCriticalTable holds finite-sample critical values for the
// Dickey-Fuller distribution, constant-only model (Fuller 1976 /
// MacKinnon 1991). Rows: sample sizes; columns: 1%, 5%, 10%.
var adfCriticalTable = []struct {
	n  int
	cv [3]float64
}{
	{25, [3]float64{-3.75, -3.00, -2.63}},
	{50, [3]float64{-3.58, -2.93, -2.60}},
	{100, [3]float64{-3.51, -2.89, -2.58}},
	{250, [3]float64{-3.46, -2.88, -2.57}},
	{500, [3]float64{-3.44, -2.87, -2.57}},
	{1 << 30, [3]float64{-3.43, -2.86, -2.57}},
}

func adfCriticalValues(n int) [3]float64 {
	for i, row := range adfCriticalTable {
		if n <= row.n {
			if i == 0 {
				return row.cv
			}
			// Linear interpolation between neighbouring rows.
			prev := adfCriticalTable[i-1]
			if row.n >= 1<<30 {
				return row.cv
			}
			frac := float64(n-prev.n) / float64(row.n-prev.n)
			var cv [3]float64
			for j := range cv {
				cv[j] = prev.cv[j] + frac*(row.cv[j]-prev.cv[j])
			}
			return cv
		}
	}
	return adfCriticalTable[len(adfCriticalTable)-1].cv
}

// ADF runs an augmented Dickey-Fuller test with a constant (no trend):
//
//	Δy_t = α + γ·y_{t-1} + Σ β_i·Δy_{t-i} + ε_t
//
// The null hypothesis is γ = 0 (unit root, non-stationary). lags < 0
// selects Schwert's rule: floor(12·(T/100)^{1/4}). The paper (F5.4)
// cites Dickey-Fuller [22] as the stationarity check that must pass
// before time-aggregated statistics are trusted.
func ADF(series []float64, lags int) (ADFResult, error) {
	T := len(series)
	if lags < 0 {
		lags = int(12 * math.Pow(float64(T)/100, 0.25))
	}
	res := ADFResult{Lags: lags}
	// Need at least a handful of effective observations beyond the
	// regressors: T - 1 - lags rows, 2 + lags columns.
	rows := T - 1 - lags
	cols := 2 + lags
	if rows < cols+2 {
		return res, fmt.Errorf("stats: ADF needs more data (T=%d, lags=%d): %w", T, lags, ErrInsufficientData)
	}

	dy := make([]float64, T-1)
	for t := 1; t < T; t++ {
		dy[t-1] = series[t] - series[t-1]
	}

	// Design matrix: [1, y_{t-1}, Δy_{t-1}, ..., Δy_{t-lags}].
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := lags + 1 + r // index into series for the dependent Δy_t
		row := make([]float64, cols)
		row[0] = 1
		row[1] = series[t-1]
		for i := 1; i <= lags; i++ {
			row[1+i] = dy[t-1-i]
		}
		X[r] = row
		y[r] = dy[t-1]
	}

	fit, err := OLS(X, y)
	if err != nil {
		return res, fmt.Errorf("stats: ADF regression failed: %w", err)
	}
	gamma := fit.Coefficients[1]
	se := fit.StdErrors[1]
	if se == 0 || math.IsNaN(se) {
		return res, fmt.Errorf("stats: ADF standard error degenerate (constant series?)")
	}
	res.Statistic = gamma / se
	res.N = rows
	res.CriticalValues = adfCriticalValues(rows)
	res.Stationary = res.Statistic < res.CriticalValues[1]
	return res, nil
}

// Autocorrelation returns the sample autocorrelation of xs at the
// given lag. Values near zero at small lags support treating
// measurements as independent; the token-bucket traces of Section 4.2
// show strong positive lag-1 autocorrelation instead.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}
