package stats

import (
	"fmt"
	"math"
	"sort"
)

// TestResult is the outcome of a hypothesis test.
type TestResult struct {
	Statistic float64
	PValue    float64
	N         int
	// RejectAt05 is a convenience: true when PValue < 0.05, i.e. the
	// null hypothesis is rejected at the conventional level.
	RejectAt05 bool
}

func (t TestResult) String() string {
	return fmt.Sprintf("stat=%.4f p=%.4g n=%d", t.Statistic, t.PValue, t.N)
}

// ShapiroWilk tests the null hypothesis that xs is drawn from a normal
// distribution, using Royston's AS R94 approximation (valid for
// 3 <= n <= 5000). The paper (F5.4) recommends testing samples for
// normality [54] before applying parametric statistics; when the test
// rejects, nonparametric methods (order-statistic CIs) must be used.
func ShapiroWilk(xs []float64) (TestResult, error) {
	n := len(xs)
	res := TestResult{N: n}
	if n < 3 {
		return res, fmt.Errorf("stats: Shapiro-Wilk needs n >= 3, got %d: %w", n, ErrInsufficientData)
	}
	if n > 5000 {
		return res, fmt.Errorf("stats: Shapiro-Wilk approximation invalid for n > 5000 (n=%d)", n)
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return res, fmt.Errorf("stats: Shapiro-Wilk undefined for constant sample")
	}

	// Expected values of normal order statistics (Blom approximation).
	m := make([]float64, n)
	ssm := 0.0
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}
	rsn := math.Sqrt(ssm)

	// Weights with Royston's polynomial corrections to the last one or
	// two coefficients.
	a := make([]float64, n)
	u := 1 / math.Sqrt(float64(n))
	if n > 5 {
		an := m[n-1]/rsn + u*(0.221157+u*(-0.147981+u*(-2.071190+u*(4.434685+u*(-2.617272)))))
		an1 := m[n-2]/rsn + u*(0.042981+u*(-0.293762+u*(-1.752461+u*(5.682633+u*(-3.582633)))))
		phi := (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
			(1 - 2*an*an - 2*an1*an1)
		a[n-1], a[n-2] = an, an1
		a[0], a[1] = -an, -an1
		for i := 2; i < n-2; i++ {
			a[i] = m[i] / math.Sqrt(phi)
		}
	} else {
		an := m[n-1]/rsn + u*(0.221157+u*(-0.147981+u*(-2.071190+u*(4.434685+u*(-2.617272)))))
		a[n-1] = an
		a[0] = -an
		if n > 3 {
			phi := (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
			for i := 1; i < n-1; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		}
	}

	mean := Mean(x)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		d := x[i] - mean
		den += d * d
	}
	w := num * num / den
	if w > 1 {
		w = 1
	}
	res.Statistic = w

	// P-value per Royston 1995.
	switch {
	case n == 3:
		const stqr = 1.047198 // asin(sqrt(3/4))
		p := 6 / math.Pi * (math.Asin(math.Sqrt(w)) - stqr)
		if p < 0 {
			p = 0
		}
		res.PValue = p
	case n <= 11:
		fn := float64(n)
		g := -2.273 + 0.459*fn
		mu := 0.5440 - 0.39978*fn + 0.025054*fn*fn - 0.0006714*fn*fn*fn
		sigma := math.Exp(1.3822 - 0.77857*fn + 0.062767*fn*fn - 0.0020322*fn*fn*fn)
		wStat := -math.Log(g - math.Log(1-w))
		z := (wStat - mu) / sigma
		res.PValue = 1 - NormalCDF(z)
	default:
		ln := math.Log(float64(n))
		mu := 0.0038915*ln*ln*ln - 0.083751*ln*ln - 0.31082*ln - 1.5861
		sigma := math.Exp(0.0030302*ln*ln - 0.082676*ln - 0.4803)
		wStat := math.Log(1 - w)
		z := (wStat - mu) / sigma
		res.PValue = 1 - NormalCDF(z)
	}
	res.RejectAt05 = res.PValue < 0.05
	return res, nil
}
