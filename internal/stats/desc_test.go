package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cloudvar/internal/simrand"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoefficientOfVariation(xs); got != 0 {
		t.Errorf("CoV of constant sample = %g, want 0", got)
	}
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Error("CoV with zero mean should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be NaNs")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	src := simrand.New(8)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = src.Normal(50, 12)
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %g != batch %g", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-6) {
		t.Errorf("Welford variance %g != batch %g", w.Variance(), Variance(xs))
	}
	min, max := MinMax(xs)
	if w.Min() != min || w.Max() != max {
		t.Error("Welford min/max mismatch")
	}
	if w.N() != len(xs) {
		t.Errorf("Welford N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty Welford should return NaNs")
	}
}

func TestQuantileAgainstKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.75, 7.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1, 2}, -0.1)) {
		t.Error("Quantile(p<0) should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1, 2}, 1.1)) {
		t.Error("Quantile(p>1) should be NaN")
	}
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Errorf("Quantile of singleton = %g", got)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	src := simrand.New(77)
	f := func(n uint8, pRaw float64) bool {
		size := int(n%50) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = src.Normal(0, 100)
		}
		p := math.Abs(math.Mod(pRaw, 1))
		q := Quantile(xs, p)
		min, max := MinMax(xs)
		return q >= min-1e-9 && q <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	src := simrand.New(78)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Float64() * 1000
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := Quantile(xs, p)
		if q < prev-1e-9 {
			t.Fatalf("quantile decreased at p=%g: %g < %g", p, q, prev)
		}
		prev = q
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Percentiles(xs, 0.25, 0.5, 0.75)
	want := []float64{3.25, 5.5, 7.75}
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Percentiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, v := range Percentiles(nil, 0.5) {
		if !math.IsNaN(v) {
			t.Error("Percentiles of empty should be NaN")
		}
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Errorf("bad summary bounds: %+v", s)
	}
	if !almostEqual(s.Median, 50, 1e-9) || !almostEqual(s.P25, 25, 1e-9) || !almostEqual(s.P75, 75, 1e-9) {
		t.Errorf("bad summary quartiles: %+v", s)
	}
	if !almostEqual(s.Mean, 50, 1e-9) {
		t.Errorf("bad summary mean: %g", s.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Error("empty summary should be NaN-filled")
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := IQR(xs); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("IQR = %g, want 4.5", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ECDF.At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("ECDF.N = %d", e.N())
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewECDF(xs)
	vals, fracs := e.Points(10)
	if len(vals) != 10 || len(fracs) != 10 {
		t.Fatalf("Points returned %d/%d entries", len(vals), len(fracs))
	}
	if vals[0] != 0 || vals[9] != 999 {
		t.Errorf("Points endpoints = %g, %g", vals[0], vals[9])
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] {
			t.Error("ECDF points not monotone")
		}
	}
	if v, f := e.Points(0); v != nil || f != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 2.6, -5, 99}
	h := NewHistogram(xs, 0, 3, 3)
	wantCounts := []int{2, 1, 3} // -5 clamps to bucket 0, 99 to bucket 2
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	dens := h.Densities()
	total := 0.0
	for _, d := range dens {
		total += d
	}
	if !almostEqual(total, 1, 1e-12) {
		t.Errorf("densities sum to %g", total)
	}
	if got := h.BucketCenter(1); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("BucketCenter(1) = %g", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		name    string
		lo, hi  float64
		buckets int
	}{
		{"zero bins", 0, 1, 0},
		{"inverted range", 1, 0, 3},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewHistogram(nil, c.lo, c.hi, c.buckets)
		})
	}
}
