package stats

import (
	"fmt"
	"math"
	"sort"

	"cloudvar/internal/simrand"
)

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Estimate   float64
	Lo, Hi     float64
	Confidence float64 // nominal level, e.g. 0.95
	N          int     // sample size the interval was computed from
}

// HalfWidth returns half the interval width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// RelativeError returns the CI half-width as a fraction of the point
// estimate — the convergence criterion used by CONFIRM analyses
// (Figures 13 and 19 test against 1% and 10% bounds). Returns +Inf
// when the estimate is zero.
func (iv Interval) RelativeError() float64 {
	if iv.Estimate == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth() / math.Abs(iv.Estimate)
}

// Contains reports whether x lies inside the interval (inclusive).
// Figure 3 marks low-repetition medians as inaccurate when they fall
// outside the gold-standard 50-run interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%g%% (n=%d)", iv.Estimate, iv.Lo, iv.Hi, iv.Confidence*100, iv.N)
}

// QuantileCI computes a nonparametric (distribution-free, asymmetric)
// confidence interval for the q-quantile of the distribution underlying
// xs, following the binomial order-statistic method of Le Boudec
// ("Performance Evaluation of Computer and Communication Systems",
// Thm 2.1), which the paper uses for both medians (Figure 3a) and the
// 90th percentile (Figure 3b).
//
// The number of samples below the true q-quantile is Binomial(n, q);
// the interval [X(l), X(u)] (1-based order statistics) covers the true
// quantile with probability BinomialCDF(u-1) - BinomialCDF(l-1), so we
// pick l as large and u as small as possible while keeping each tail's
// uncovered probability at most (1-conf)/2.
//
// An error is returned when n is too small for the requested confidence
// (e.g. n=3 cannot support a 95% median CI; the paper makes exactly
// this point in Figure 3's caption).
func QuantileCI(xs []float64, q, conf float64) (Interval, error) {
	var s Sample
	s.loadSorted(xs)
	return s.QuantileCI(q, conf)
}

// errQuantileRange, errConfidenceRange, errCIUnachievable and
// errTooFewResamples are shared by the package-level CI functions and
// the Sample methods so both paths report identical errors.
func errQuantileRange(q float64) error {
	return fmt.Errorf("stats: quantile %g outside (0,1)", q)
}

func errConfidenceRange(conf float64) error {
	return fmt.Errorf("stats: confidence %g outside (0,1)", conf)
}

func errCIUnachievable(n int, conf, q float64) error {
	return fmt.Errorf("stats: n=%d too small for %g%% CI on q=%g: %w",
		n, conf*100, q, ErrInsufficientData)
}

func errTooFewResamples(resamples int) error {
	return fmt.Errorf("stats: %d bootstrap resamples is too few", resamples)
}

// quantileOrderIndices returns 1-based order-statistic indices (l, u)
// such that [X(l), X(u)] covers the q-quantile with confidence at
// least 1-alpha, splitting alpha evenly between tails. For n > 100 a
// normal approximation to the binomial is used (as Le Boudec suggests);
// otherwise exact binomial tail sums.
func quantileOrderIndices(n int, q, alpha float64) (l, u int, ok bool) {
	if n > 100 {
		z := NormalQuantile(1 - alpha/2)
		mu := float64(n) * q
		sigma := math.Sqrt(float64(n) * q * (1 - q))
		l = int(math.Floor(mu - z*sigma))
		u = int(math.Ceil(mu+z*sigma)) + 1
		if l < 1 {
			l = 1
		}
		if u > n {
			u = n
		}
		if l >= u {
			return 0, 0, false
		}
		return l, u, true
	}
	// Exact: coverage of [X(l), X(u)] is P(l <= B <= u-1) =
	// BinomialCDF(u-1) - BinomialCDF(l-1), where B ~ Binomial(n, q)
	// counts samples below the true quantile. First try to give each
	// tail alpha/2; when a tail cannot meet its half even at the
	// extreme order statistic (common for tail quantiles, e.g. the
	// p90 of n=30), fall back to the extreme and grant the other tail
	// the remaining risk budget — the asymmetric allocation Le Boudec
	// permits.
	half := alpha / 2
	upperLoss := func(u int) float64 { return 1 - BinomialCDF(n, q, u-1) }
	lowerLoss := func(l int) float64 { return BinomialCDF(n, q, l-1) }

	u = n
	for cand := n; cand >= 1; cand-- {
		if upperLoss(cand) <= half {
			u = cand
		} else {
			break
		}
	}
	// Lower index gets whatever risk the upper tail left unused.
	lowerBudget := alpha - upperLoss(u)
	l = 1
	for cand := 1; cand <= n; cand++ {
		if lowerLoss(cand) <= lowerBudget {
			l = cand
		} else {
			break
		}
	}
	if l >= u {
		return 0, 0, false
	}
	// Verify achieved coverage; the loops above are conservative but
	// double-check the extreme-order-statistic corner (coverage of
	// [X(1), X(n)] is 1 - q^n - (1-q)^n, which can still miss alpha).
	coverage := BinomialCDF(n, q, u-1) - BinomialCDF(n, q, l-1)
	if coverage < 1-alpha-1e-12 {
		return 0, 0, false
	}
	return l, u, true
}

// MedianCI is QuantileCI at q = 0.5.
func MedianCI(xs []float64, conf float64) (Interval, error) {
	return QuantileCI(xs, 0.5, conf)
}

// MinSamplesForQuantileCI returns the smallest sample size for which a
// two-sided nonparametric CI at the given quantile and confidence is
// achievable at all (i.e. [X(1), X(n)] has enough coverage). For the
// median at 95% this is 6; the 3-run experiments common in the surveyed
// literature cannot produce a valid CI.
func MinSamplesForQuantileCI(q, conf float64) int {
	alpha := 1 - conf
	for n := 2; n <= 100000; n++ {
		cover := 1 - math.Pow(q, float64(n)) - math.Pow(1-q, float64(n))
		if cover >= 1-alpha {
			return n
		}
	}
	return -1
}

// BootstrapCI computes a percentile-bootstrap confidence interval for
// an arbitrary statistic. It exists as the ablation comparator for the
// order-statistic method (DESIGN.md §5): the binomial method needs no
// resampling and is what the paper uses, but bootstrap generalises to
// statistics without order-statistic theory.
func BootstrapCI(xs []float64, statistic func([]float64) float64, conf float64, resamples int, src *simrand.Source) (Interval, error) {
	n := len(xs)
	iv := Interval{Confidence: conf, N: n}
	if n < 2 {
		return iv, ErrInsufficientData
	}
	if resamples < 10 {
		return iv, errTooFewResamples(resamples)
	}
	iv.Estimate = statistic(xs)
	stats := make([]float64, resamples)
	resample := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := range resample {
			resample[i] = xs[src.Intn(n)]
		}
		stats[r] = statistic(resample)
	}
	sort.Float64s(stats)
	alpha := 1 - conf
	iv.Lo = QuantileSorted(stats, alpha/2)
	iv.Hi = QuantileSorted(stats, 1-alpha/2)
	return iv, nil
}
