package stats

import "fmt"

// CohenKappa measures inter-rater agreement between two reviewers who
// each assigned one of k categorical labels to the same items,
// correcting for agreement expected by chance:
//
//	κ = (p_o - p_e) / (1 - p_e)
//
// The paper's survey methodology (Section 2) had two reviewers label
// every article for three reporting criteria and reports κ of 0.95,
// 0.81 and 0.85 — all above the 0.8 "almost perfect agreement"
// threshold of Viera & Garrett [59].
//
// a and b are the two reviewers' labels for the same items, in the
// same order. Labels are opaque; any comparable values work.
func CohenKappa[L comparable](a, b []L) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: kappa label slices differ in length (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, ErrInsufficientData
	}

	countA := make(map[L]int)
	countB := make(map[L]int)
	agree := 0
	for i := 0; i < n; i++ {
		countA[a[i]]++
		countB[b[i]]++
		if a[i] == b[i] {
			agree++
		}
	}

	po := float64(agree) / float64(n)
	pe := 0.0
	for label, ca := range countA {
		pe += float64(ca) * float64(countB[label]) / (float64(n) * float64(n))
	}
	if pe == 1 {
		// Both raters used a single identical label for everything;
		// agreement is perfect but chance-corrected agreement is
		// undefined. Convention: return 1 when observed agreement is
		// also perfect.
		if po == 1 {
			return 1, nil
		}
		return 0, fmt.Errorf("stats: kappa undefined (expected agreement is 1)")
	}
	return (po - pe) / (1 - pe), nil
}

// KappaInterpretation returns the Viera & Garrett qualitative band for
// a kappa score, as cited by the paper ("values larger than 0.8 show
// that almost perfect agreement has been achieved").
func KappaInterpretation(kappa float64) string {
	switch {
	case kappa < 0:
		return "less than chance agreement"
	case kappa <= 0.20:
		return "slight agreement"
	case kappa <= 0.40:
		return "fair agreement"
	case kappa <= 0.60:
		return "moderate agreement"
	case kappa <= 0.80:
		return "substantial agreement"
	default:
		return "almost perfect agreement"
	}
}
