package stats

import (
	"fmt"
	"math"
	"sort"
)

// ANOVAResult is the outcome of a one-way analysis of variance.
type ANOVAResult struct {
	FStatistic float64
	PValue     float64
	// DFBetween and DFWithin are the degrees of freedom.
	DFBetween, DFWithin int
	// Groups is the number of groups compared.
	Groups int
	// RejectAt05 reports rejection of "all group means equal" at 5%.
	RejectAt05 bool
}

func (r ANOVAResult) String() string {
	return fmt.Sprintf("F(%d,%d)=%.3f p=%.4g", r.DFBetween, r.DFWithin, r.FStatistic, r.PValue)
}

// OneWayANOVA tests whether several groups share a common mean — the
// classic tool the paper (F5.3) lists for separating systematic
// factors from noise when variability is well-behaved stochastic
// noise. Note the paper's caveat: ANOVA assumes normality and
// independence; run ShapiroWilk and IndependenceCheck first, and fall
// back to KruskalWallis when they fail.
func OneWayANOVA(groups ...[]float64) (ANOVAResult, error) {
	k := len(groups)
	if k < 2 {
		return ANOVAResult{}, fmt.Errorf("stats: ANOVA needs >= 2 groups, got %d", k)
	}
	n := 0
	grand := 0.0
	for i, g := range groups {
		if len(g) < 2 {
			return ANOVAResult{}, fmt.Errorf("stats: ANOVA group %d has %d samples, need >= 2: %w",
				i, len(g), ErrInsufficientData)
		}
		n += len(g)
		grand += Sum(g)
	}
	grand /= float64(n)

	ssBetween, ssWithin := 0.0, 0.0
	for _, g := range groups {
		m := Mean(g)
		d := m - grand
		ssBetween += float64(len(g)) * d * d
		for _, x := range g {
			e := x - m
			ssWithin += e * e
		}
	}

	dfB := k - 1
	dfW := n - k
	if ssWithin == 0 {
		// All groups internally constant: if the means differ the
		// F statistic is infinite (certain rejection); if not, there
		// is no evidence at all.
		res := ANOVAResult{DFBetween: dfB, DFWithin: dfW, Groups: k}
		if ssBetween > 0 {
			res.FStatistic = math.Inf(1)
			res.PValue = 0
			res.RejectAt05 = true
		} else {
			res.FStatistic = 0
			res.PValue = 1
		}
		return res, nil
	}

	f := (ssBetween / float64(dfB)) / (ssWithin / float64(dfW))
	res := ANOVAResult{
		FStatistic: f,
		DFBetween:  dfB,
		DFWithin:   dfW,
		Groups:     k,
		PValue:     1 - FCDF(f, float64(dfB), float64(dfW)),
	}
	res.RejectAt05 = res.PValue < 0.05
	return res, nil
}

// FCDF returns the CDF of the F distribution with (d1, d2) degrees of
// freedom at x, via the regularised incomplete beta function.
func FCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// ChiSquareCDF returns the chi-square CDF with k degrees of freedom,
// via the regularised lower incomplete gamma function.
func ChiSquareCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(k/2, x/2)
}

// RegIncBeta computes the regularised incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style, Lentz's algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	// Use the symmetry relation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	// Lentz's continued fraction.
	const (
		tiny    = 1e-30
		epsilon = 1e-14
		maxIter = 300
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x /
				((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x /
				((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < epsilon {
			break
		}
	}
	return front * (f - 1)
}

// regIncGammaLower computes P(a, x), the regularised lower incomplete
// gamma function, by series (x < a+1) or continued fraction.
func regIncGammaLower(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x < a+1:
		// Series expansion.
		sum := 1.0 / a
		term := sum
		for n := 1; n < 300; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	default:
		// Continued fraction for Q(a, x), then P = 1 - Q.
		const tiny = 1e-30
		b := x + 1 - a
		c := 1 / tiny
		d := 1 / b
		h := d
		for i := 1; i < 300; i++ {
			an := -float64(i) * (float64(i) - a)
			b += 2
			d = an*d + b
			if math.Abs(d) < tiny {
				d = tiny
			}
			c = b + an/c
			if math.Abs(c) < tiny {
				c = tiny
			}
			d = 1 / d
			del := d * c
			h *= del
			if math.Abs(del-1) < 1e-15 {
				break
			}
		}
		q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
		return 1 - q
	}
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// KruskalWallis is the nonparametric analogue of one-way ANOVA: it
// tests whether k samples come from the same distribution using only
// ranks, which is what F5.4 prescribes once normality fails (as it
// does for token-bucket-shaped runtimes, which are bimodal).
func KruskalWallis(groups ...[]float64) (TestResult, error) {
	k := len(groups)
	if k < 2 {
		return TestResult{}, fmt.Errorf("stats: Kruskal-Wallis needs >= 2 groups")
	}
	type obs struct {
		v     float64
		group int
	}
	var all []obs
	for gi, g := range groups {
		if len(g) < 2 {
			return TestResult{}, fmt.Errorf("stats: Kruskal-Wallis group %d has %d samples: %w",
				gi, len(g), ErrInsufficientData)
		}
		for _, v := range g {
			all = append(all, obs{v, gi})
		}
	}
	n := len(all)
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	ranks := make([]float64, n)
	tieCorr := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2
		for t := i; t < j; t++ {
			ranks[t] = mid
		}
		tl := float64(j - i)
		tieCorr += tl*tl*tl - tl
		i = j
	}

	rankSum := make([]float64, k)
	for i, o := range all {
		rankSum[o.group] += ranks[i]
	}
	h := 0.0
	for gi, g := range groups {
		h += rankSum[gi] * rankSum[gi] / float64(len(g))
	}
	nf := float64(n)
	h = 12/(nf*(nf+1))*h - 3*(nf+1)

	// Tie correction.
	denom := 1 - tieCorr/(nf*nf*nf-nf)
	if denom <= 0 {
		// Everything tied: no evidence against the null.
		return TestResult{N: n, PValue: 1}, nil
	}
	h /= denom

	res := TestResult{Statistic: h, N: n}
	res.PValue = 1 - ChiSquareCDF(h, float64(k-1))
	res.RejectAt05 = res.PValue < 0.05
	return res, nil
}
