package stats

import (
	"fmt"
	"testing"

	"cloudvar/internal/simrand"
)

// Quantile/CI computation runs once per campaign cell and once per
// drift group — with the scenario engine multiplying cells, it is the
// statistics layer's hot path. Stable names + sized sub-benchmarks
// keep the results benchstat-comparable across commits:
//
//	go test ./internal/stats -run '^$' -bench BenchmarkStats -count 10

func benchSample(n int) []float64 {
	src := simrand.New(3)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Normal(100, 15)
	}
	return xs
}

// BenchmarkStatsQuantile measures the single-quantile path as the
// pipeline now runs it: a reused Sample re-loaded with fresh data per
// call (one sort, zero steady-state allocation). The one-shot package
// function costs the same plus one buffer allocation.
func BenchmarkStatsQuantile(b *testing.B) {
	for _, n := range []int{32, 1024, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var s Sample
			s.Reset(xs) // warm the buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(xs)
				if v := s.Quantile(0.5); v <= 0 {
					b.Fatal("bad quantile")
				}
			}
		})
	}
}

// BenchmarkStatsPercentiles measures the batched path (one sort, many
// quantiles) with a reused Sample and destination buffer.
func BenchmarkStatsPercentiles(b *testing.B) {
	for _, n := range []int{32, 1024, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var s Sample
			s.Reset(xs)
			out := make([]float64, 0, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(xs)
				out = s.Percentiles(out[:0], 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)
				if len(out) != 7 {
					b.Fatal("bad percentile batch")
				}
			}
		})
	}
}

// BenchmarkStatsSummarize measures the full per-cell Summary from a
// reused Sample.
func BenchmarkStatsSummarize(b *testing.B) {
	for _, n := range []int{60, 4096} { // 60 ≈ one emulated 10-minute cell
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var smp Sample
			smp.Reset(xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smp.Reset(xs)
				if s := smp.Summary(); s.N != n {
					b.Fatal("bad summary")
				}
			}
		})
	}
}

// BenchmarkStatsMedianCI measures the order-statistic median CI the
// drift comparison recomputes per group per run.
func BenchmarkStatsMedianCI(b *testing.B) {
	for _, n := range []int{10, 50, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var s Sample
			s.Reset(xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(xs)
				if _, err := s.MedianCI(0.95); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatsQuantileCI measures the Le Boudec tail-quantile CI.
func BenchmarkStatsQuantileCI(b *testing.B) {
	for _, n := range []int{50, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var s Sample
			s.Reset(xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(xs)
				if _, err := s.QuantileCI(0.9, 0.95); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatsSamplePush measures incremental prefix growth — the
// CONFIRM pattern: each iteration builds an n-observation sample one
// Push at a time, querying the median after every insertion.
func BenchmarkStatsSamplePush(b *testing.B) {
	for _, n := range []int{50, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchSample(n)
			var s Sample
			s.Reset(xs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(xs[:0])
				for _, x := range xs {
					s.Push(x)
					if v := s.Median(); v <= 0 {
						b.Fatal("bad median")
					}
				}
			}
		})
	}
}
