package stats

import (
	"math"
	"sort"
)

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (Hyndman-Fan type 7, the default of R and
// NumPy). It copies and sorts the input per call; hot paths that query
// the same data repeatedly (or reuse a buffer across calls) should
// hold a Sample instead. Returns NaN for empty input or p outside
// [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	var s Sample
	s.loadSorted(xs)
	return s.Quantile(p)
}

// QuantileSorted is Quantile for data that is already sorted ascending.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Percentiles evaluates several quantiles at once, sorting only once.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, 0, len(ps))
	if len(xs) == 0 {
		for range ps {
			out = append(out, math.NaN())
		}
		return out
	}
	var s Sample
	s.loadSorted(xs)
	return s.Percentiles(out, ps...)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// SampleECDF wraps a Sample's sorted buffer as an ECDF without
// copying. The ECDF is invalidated by the Sample's next Reset or Push.
func SampleECDF(s *Sample) *ECDF { return &ECDF{sorted: s.Sorted()} }

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns up to max evenly spaced (value, cumulative fraction)
// pairs for plotting, always including the first and last sample. This
// is how Figure 6's CDFs are serialised.
func (e *ECDF) Points(max int) (values, fractions []float64) {
	return ecdfPoints(e.sorted, max, nil, nil)
}

// ecdfPoints is the shared decimation loop behind ECDF.Points and
// Sample.ECDFPoints, appending to the given slices.
func ecdfPoints(sorted []float64, max int, values, fractions []float64) (v, f []float64) {
	n := len(sorted)
	if n == 0 || max <= 0 {
		return values, fractions
	}
	if max > n {
		max = n
	}
	for i := 0; i < max; i++ {
		idx := i * (n - 1) / maxInt(max-1, 1)
		values = append(values, sorted[idx])
		fractions = append(fractions, float64(idx+1)/float64(n))
	}
	return values, fractions
}

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 { return QuantileSorted(e.sorted, p) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Histogram bins a sample into equal-width buckets over [lo, hi).
// Values outside the range are clamped into the first or last bucket,
// so the counts always sum to len(xs).
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into bins equal-width buckets spanning [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	binInto(h, xs)
	return h
}

// binInto is the shared clamp-and-bin loop behind NewHistogram and
// Sample.FillHistogram. Counts are incremented, not reset.
func binInto(h *Histogram, xs []float64) {
	bins := len(h.Counts)
	width := (h.Hi - h.Lo) / float64(bins)
	for _, x := range xs {
		i := int((x - h.Lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
}

// Densities returns the fraction of samples in each bucket. Used to
// render the violin plot of Figure 9 (plot thickness proportional to
// probability density).
func (h *Histogram) Densities() []float64 {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	out := make([]float64, len(h.Counts))
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}
