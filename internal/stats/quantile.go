package stats

import (
	"math"
	"sort"
)

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (Hyndman-Fan type 7, the default of R and
// NumPy). It copies and sorts the input; use QuantileSorted in hot
// paths that already hold sorted data. Returns NaN for empty input or
// p outside [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for data that is already sorted ascending.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Percentiles evaluates several quantiles at once, sorting only once.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = QuantileSorted(sorted, p)
	}
	return out
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns up to max evenly spaced (value, cumulative fraction)
// pairs for plotting, always including the first and last sample. This
// is how Figure 6's CDFs are serialised.
func (e *ECDF) Points(max int) (values, fractions []float64) {
	n := len(e.sorted)
	if n == 0 || max <= 0 {
		return nil, nil
	}
	if max > n {
		max = n
	}
	values = make([]float64, max)
	fractions = make([]float64, max)
	for i := 0; i < max; i++ {
		idx := i * (n - 1) / maxInt(max-1, 1)
		values[i] = e.sorted[idx]
		fractions[i] = float64(idx+1) / float64(n)
	}
	return values, fractions
}

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 { return QuantileSorted(e.sorted, p) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Histogram bins a sample into equal-width buckets over [lo, hi).
// Values outside the range are clamped into the first or last bucket,
// so the counts always sum to len(xs).
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into bins equal-width buckets spanning [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Densities returns the fraction of samples in each bucket. Used to
// render the violin plot of Figure 9 (plot thickness proportional to
// probability density).
func (h *Histogram) Densities() []float64 {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	out := make([]float64, len(h.Counts))
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}
