package stats

import (
	"errors"
	"math"
	"sort"
	"testing"

	"cloudvar/internal/simrand"
)

func normalSample(seed uint64, n int, mean, sd float64) []float64 {
	src := simrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Normal(mean, sd)
	}
	return xs
}

func TestMedianCIContainsSampleMedian(t *testing.T) {
	xs := normalSample(1, 50, 100, 10)
	iv, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Estimate) {
		t.Errorf("CI %v does not contain its own estimate", iv)
	}
	if iv.Lo > iv.Hi {
		t.Errorf("inverted interval %v", iv)
	}
}

// TestMedianCICoverage verifies the central statistical claim: the 95%
// nonparametric CI should contain the true median in roughly 95% of
// repeated experiments. This is the property the paper's "gold
// standard" interpretation rests on.
func TestMedianCICoverage(t *testing.T) {
	const (
		trials     = 400
		sampleSize = 30
		trueMedian = 100.0
	)
	src := simrand.New(12345)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, sampleSize)
		for i := range xs {
			xs[i] = src.Normal(trueMedian, 15)
		}
		iv, err := MedianCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(trueMedian) {
			covered++
		}
	}
	coverage := float64(covered) / trials
	// Order-statistic CIs are conservative; expect >= nominal minus
	// simulation noise, and not wildly over-covering.
	if coverage < 0.92 {
		t.Errorf("coverage %.3f below nominal 0.95", coverage)
	}
}

func TestQuantileCICoverageP90(t *testing.T) {
	const (
		trials     = 300
		sampleSize = 80
	)
	src := simrand.New(999)
	trueP90 := NormalQuantile(0.9) // standard normal p90
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, sampleSize)
		for i := range xs {
			xs[i] = src.Normal(0, 1)
		}
		iv, err := QuantileCI(xs, 0.9, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(trueP90) {
			covered++
		}
	}
	coverage := float64(covered) / trials
	if coverage < 0.90 {
		t.Errorf("p90 CI coverage %.3f below nominal", coverage)
	}
}

func TestQuantileCITooFewSamples(t *testing.T) {
	// The paper notes 3 repetitions cannot support a 95% median CI.
	_, err := MedianCI([]float64{1, 2, 3}, 0.95)
	if err == nil {
		t.Fatal("expected error for n=3 at 95%")
	}
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("error %v should wrap ErrInsufficientData", err)
	}
}

func TestMinSamplesForQuantileCI(t *testing.T) {
	// Coverage of [X(1), X(n)] for the median is 1 - 2*(1/2)^n;
	// >= 0.95 first at n = 6.
	if got := MinSamplesForQuantileCI(0.5, 0.95); got != 6 {
		t.Errorf("min samples for median 95%% CI = %d, want 6", got)
	}
	// Tail quantiles need far more: p90 at 95% needs
	// 1 - 0.9^n - 0.1^n >= 0.95 -> n = 29.
	if got := MinSamplesForQuantileCI(0.9, 0.95); got != 29 {
		t.Errorf("min samples for p90 95%% CI = %d, want 29", got)
	}
	// And a valid CI must exist at exactly that n.
	xs := normalSample(3, 6, 0, 1)
	if _, err := MedianCI(xs, 0.95); err != nil {
		t.Errorf("n=6 median CI should be achievable: %v", err)
	}
}

func TestQuantileCIInvalidArgs(t *testing.T) {
	xs := normalSample(5, 30, 0, 1)
	if _, err := QuantileCI(xs, 0, 0.95); err == nil {
		t.Error("q=0 should error")
	}
	if _, err := QuantileCI(xs, 0.5, 1.0); err == nil {
		t.Error("conf=1 should error")
	}
	if _, err := QuantileCI(nil, 0.5, 0.95); err == nil {
		t.Error("empty input should error")
	}
}

func TestQuantileCINarrowsWithN(t *testing.T) {
	src := simrand.New(31)
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Normal(0, 1)
		}
		iv, err := MedianCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return iv.Hi - iv.Lo
	}
	// Average a few trials to damp noise.
	avg := func(n, trials int) float64 {
		s := 0.0
		for i := 0; i < trials; i++ {
			s += width(n)
		}
		return s / float64(trials)
	}
	small := avg(20, 30)
	large := avg(500, 30)
	if large >= small {
		t.Errorf("CI width did not shrink: n=20 -> %g, n=500 -> %g", small, large)
	}
}

func TestNormalApproxMatchesExactNear100(t *testing.T) {
	// The implementation switches methods at n=100; check the interval
	// indices produced just below and above are close.
	src := simrand.New(47)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	ivExact, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	xs2 := append(xs, src.Normal(0, 1))
	ivApprox, err := MedianCI(xs2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Widths should be within a factor of two of each other.
	we, wa := ivExact.Hi-ivExact.Lo, ivApprox.Hi-ivApprox.Lo
	if wa > 2*we || we > 2*wa {
		t.Errorf("method switch discontinuity: exact width %g vs approx %g", we, wa)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Estimate: 100, Lo: 90, Hi: 110, Confidence: 0.95, N: 50}
	if iv.HalfWidth() != 10 {
		t.Errorf("HalfWidth = %g", iv.HalfWidth())
	}
	if !almostEqual(iv.RelativeError(), 0.1, 1e-12) {
		t.Errorf("RelativeError = %g", iv.RelativeError())
	}
	if !iv.Contains(90) || !iv.Contains(110) || iv.Contains(89.999) {
		t.Error("Contains boundary behaviour wrong")
	}
	zero := Interval{Estimate: 0, Lo: -1, Hi: 1}
	if !math.IsInf(zero.RelativeError(), 1) {
		t.Error("RelativeError with zero estimate should be +Inf")
	}
	if iv.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestBootstrapCIMedian(t *testing.T) {
	src := simrand.New(71)
	xs := normalSample(72, 100, 50, 5)
	iv, err := BootstrapCI(xs, Median, 0.95, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(Median(xs)) {
		t.Errorf("bootstrap CI %v excludes sample median %g", iv, Median(xs))
	}
	// Bootstrap and order-statistic intervals should be same order of
	// magnitude (the ablation claim).
	ivOS, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth() > 3*ivOS.HalfWidth() || ivOS.HalfWidth() > 3*iv.HalfWidth() {
		t.Errorf("bootstrap %v and order-stat %v widths diverge", iv, ivOS)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	src := simrand.New(73)
	if _, err := BootstrapCI([]float64{1}, Median, 0.95, 100, src); err == nil {
		t.Error("single sample should error")
	}
	if _, err := BootstrapCI([]float64{1, 2, 3}, Median, 0.95, 5, src); err == nil {
		t.Error("too few resamples should error")
	}
}

func TestQuantileOrderIndicesExactSmallN(t *testing.T) {
	// For n=6, q=0.5, conf=0.95, the only valid interval is
	// [X(1), X(6)] with coverage 1 - 2*(0.5)^6 = 0.96875.
	l, u, ok := quantileOrderIndices(6, 0.5, 0.05)
	if !ok {
		t.Fatal("n=6 median CI should be achievable")
	}
	if l != 1 || u != 6 {
		t.Errorf("indices = (%d, %d), want (1, 6)", l, u)
	}
	coverage := BinomialCDF(6, 0.5, u-1) - BinomialCDF(6, 0.5, l-1)
	if coverage < 0.95 {
		t.Errorf("achieved coverage %g < 0.95", coverage)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		back := NormalCDF(z)
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("round trip p=%g -> z=%g -> %g", p, z, back)
		}
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-12 {
		t.Errorf("NormalQuantile(0.5) = %g", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile endpoints wrong")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile out-of-range should be NaN")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.5, 0},
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%g) = %.12f, want %.12f", c.p, got, c.want)
		}
	}
}

func TestBinomialPMFCDF(t *testing.T) {
	// Binomial(4, 0.5): pmf = 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := BinomialPMF(4, 0.5, k); math.Abs(got-w) > 1e-12 {
			t.Errorf("PMF(4,0.5,%d) = %g, want %g", k, got, w)
		}
	}
	if got := BinomialCDF(4, 0.5, 1); math.Abs(got-5.0/16) > 1e-12 {
		t.Errorf("CDF(4,0.5,1) = %g", got)
	}
	if BinomialCDF(4, 0.5, -1) != 0 || BinomialCDF(4, 0.5, 4) != 1 {
		t.Error("CDF boundary values wrong")
	}
	if BinomialPMF(4, 0.5, -1) != 0 || BinomialPMF(4, 0.5, 5) != 0 {
		t.Error("PMF out of support should be 0")
	}
	if BinomialPMF(4, 0, 0) != 1 || BinomialPMF(4, 1, 4) != 1 {
		t.Error("degenerate p handling wrong")
	}
}

func TestBinomialCDFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 10, 50, 100} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			total := 0.0
			for k := 0; k <= n; k++ {
				total += BinomialPMF(n, p, k)
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("PMF(n=%d,p=%g) sums to %g", n, p, total)
			}
		}
	}
}

// TestFigure3Scenario reproduces the paper's core Section 2.1 claim in
// miniature: with a high-variance bandwidth distribution, 3-run medians
// frequently fall outside the 50-run gold-standard CI.
func TestFigure3Scenario(t *testing.T) {
	src := simrand.New(2020)
	dist := simrand.MustQuantileDist(
		[]float64{0.01, 0.25, 0.5, 0.75, 0.99},
		[]float64{50, 200, 400, 700, 950},
	)
	runBenchmark := func() float64 {
		// Runtime inversely proportional to sampled bandwidth, the
		// simplest model of a network-bound job.
		bw := dist.Sample(src)
		return 1e5 / bw
	}
	misses := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		gold := make([]float64, 50)
		for i := range gold {
			gold[i] = runBenchmark()
		}
		iv, err := MedianCI(gold, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		three := []float64{runBenchmark(), runBenchmark(), runBenchmark()}
		sort.Float64s(three)
		if !iv.Contains(three[1]) {
			misses++
		}
	}
	// The paper found 3-run medians outside the gold CI for 75% of
	// clouds; in this synthetic setting we only assert the effect is
	// common (>10%), demonstrating the phenomenon exists.
	if misses < 10 {
		t.Errorf("3-run medians missed gold CI only %d/100 times; expected frequent misses", misses)
	}
}
