package stats

import (
	"math"
	"sort"

	"cloudvar/internal/simrand"
)

// Sample is a measurement sample that is sorted once and then answers
// every order-statistic query — quantiles, percentile batches, ECDF
// evaluation, histograms, nonparametric confidence intervals — from
// the same sorted buffer. It is the allocation-free core the
// copy-and-sort-per-call package functions (Quantile, Percentiles,
// Summarize, QuantileCI, ...) are thin wrappers over.
//
// The zero value is an empty sample ready for Reset. Reset reuses the
// internal buffers, so a Sample held across loop iterations (one per
// campaign bin, window, or prefix) performs no steady-state
// allocation:
//
//	var s stats.Sample
//	for _, window := range windows {
//		s.Reset(window)
//		medians = append(medians, s.Median())
//	}
//
// Sample is not safe for concurrent use; give each goroutine its own
// (the fleet gives each worker one inside its scratch arena).
//
// Bit-compatibility contract: every query answers with exactly the
// bits the legacy package functions produce. In particular Reset
// computes the moment statistics (mean, variance) over the input in
// its original order before sorting, because float64 summation is
// order-sensitive and Summarize always summed in caller order.
type Sample struct {
	sorted []float64
	// Moments captured at Reset in input order; valid only while
	// momentsValid (Push invalidates them, and recomputes on demand
	// from the sorted buffer — ulp-level different from a Reset of the
	// same data in arrival order, so push-built samples should not be
	// mixed into golden-artifact paths that legacy-summarised).
	mean         float64
	variance     float64
	momentsValid bool
	// scratch backs bootstrap resampling and other transient needs.
	scratch []float64
}

// NewSample returns a Sample over a copy of xs, sorted once.
func NewSample(xs []float64) *Sample {
	s := &Sample{}
	s.Reset(xs)
	return s
}

// Reset loads xs into the sample, reusing the internal buffers. The
// input is copied, never aliased or mutated.
func (s *Sample) Reset(xs []float64) *Sample {
	s.mean = Mean(xs)
	s.variance = Variance(xs)
	s.loadSorted(xs)
	s.momentsValid = true
	return s
}

// loadSorted loads and sorts xs without capturing moments — the
// cheaper path for order-statistic-only wrappers (Quantile, CIs).
func (s *Sample) loadSorted(xs []float64) {
	s.momentsValid = false
	s.sorted = append(s.sorted[:0], xs...)
	sort.Float64s(s.sorted)
}

// Push inserts one observation into sorted position (shifting the
// tail), growing the sample incrementally — the CONFIRM prefix
// pattern, where re-sorting every prefix would be O(n² log n). NaNs
// sort first, matching sort.Float64s.
func (s *Sample) Push(x float64) {
	i := sort.Search(len(s.sorted), func(i int) bool {
		v := s.sorted[i]
		// First index whose element sorts strictly after x under the
		// sort.Float64s order (NaN < everything, then <).
		if math.IsNaN(x) {
			return !math.IsNaN(v)
		}
		return x < v
	})
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = x
	s.momentsValid = false
}

// N returns the sample size.
func (s *Sample) N() int { return len(s.sorted) }

// Sorted exposes the sorted buffer. Callers must treat it as
// read-only; it is invalidated by the next Reset or Push.
func (s *Sample) Sorted() []float64 { return s.sorted }

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	return s.sorted[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	return s.sorted[len(s.sorted)-1]
}

// moments returns (mean, variance) with the legacy bit pattern: the
// input-order sums captured at Reset when available, else recomputed
// from the sorted buffer (push-built samples).
func (s *Sample) moments() (mean, variance float64) {
	if s.momentsValid {
		return s.mean, s.variance
	}
	return Mean(s.sorted), Variance(s.sorted)
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	m, _ := s.moments()
	return m
}

// StdDev returns the unbiased sample standard deviation, or NaN below
// two observations.
func (s *Sample) StdDev() float64 {
	_, v := s.moments()
	return math.Sqrt(v)
}

// CoV returns the fractional coefficient of variation, NaN when the
// mean is zero.
func (s *Sample) CoV() float64 {
	m, v := s.moments()
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return math.Sqrt(v) / math.Abs(m)
}

// Quantile returns the p-quantile (Hyndman-Fan type 7) without any
// copying or re-sorting. NaN for an empty sample or p outside [0, 1].
func (s *Sample) Quantile(p float64) float64 { return QuantileSorted(s.sorted, p) }

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Percentiles appends the requested quantiles to dst (which may be
// nil) and returns it — the batched path, allocation-free when dst has
// capacity.
func (s *Sample) Percentiles(dst []float64, ps ...float64) []float64 {
	for _, p := range ps {
		dst = append(dst, s.Quantile(p))
	}
	return dst
}

// CDF returns the fraction of the sample <= x (the ECDF evaluated at
// x), or NaN for an empty sample.
func (s *Sample) CDF(x float64) float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] > x })
	return float64(i) / float64(len(s.sorted))
}

// ECDFPoints appends up to max evenly spaced (value, cumulative
// fraction) pairs to the given slices and returns them — ECDF.Points
// served from the shared sorted buffer.
func (s *Sample) ECDFPoints(max int, values, fractions []float64) (v, f []float64) {
	return ecdfPoints(s.sorted, max, values, fractions)
}

// Summary computes the full descriptive summary from the sorted
// buffer, bit-identical to Summarize on the Reset input.
func (s *Sample) Summary() Summary {
	out := Summary{N: len(s.sorted)}
	if len(s.sorted) == 0 {
		nan := math.NaN()
		out.Mean, out.StdDev, out.CoV = nan, nan, nan
		out.Min, out.P01, out.P25, out.Median, out.P75, out.P90, out.P99, out.Max = nan, nan, nan, nan, nan, nan, nan, nan
		return out
	}
	out.Mean = s.Mean()
	out.StdDev = s.StdDev()
	out.CoV = s.CoV()
	out.Min = s.sorted[0]
	out.Max = s.sorted[len(s.sorted)-1]
	out.P01 = s.Quantile(0.01)
	out.P25 = s.Quantile(0.25)
	out.Median = s.Quantile(0.50)
	out.P75 = s.Quantile(0.75)
	out.P90 = s.Quantile(0.90)
	out.P99 = s.Quantile(0.99)
	return out
}

// QuantileCI computes the Le Boudec nonparametric CI for the
// q-quantile from the already-sorted buffer (see the package function
// QuantileCI for the method).
func (s *Sample) QuantileCI(q, conf float64) (Interval, error) {
	n := len(s.sorted)
	iv := Interval{Confidence: conf, N: n}
	if n == 0 {
		return iv, ErrInsufficientData
	}
	if q <= 0 || q >= 1 {
		return iv, errQuantileRange(q)
	}
	if conf <= 0 || conf >= 1 {
		return iv, errConfidenceRange(conf)
	}
	iv.Estimate = QuantileSorted(s.sorted, q)
	alpha := 1 - conf
	l, u, achievable := quantileOrderIndices(n, q, alpha)
	if !achievable {
		return iv, errCIUnachievable(n, conf, q)
	}
	iv.Lo = s.sorted[l-1] // order statistics are 1-based
	iv.Hi = s.sorted[u-1]
	return iv, nil
}

// MedianCI is QuantileCI at q = 0.5.
func (s *Sample) MedianCI(conf float64) (Interval, error) { return s.QuantileCI(0.5, conf) }

// BootstrapCI is the percentile-bootstrap CI computed with the
// sample's reusable scratch: steady-state resampling allocates
// nothing. Resamples are drawn from the sorted buffer; the bootstrap
// distribution is identical in law to the package function's (indices
// are iid uniform), though not bit-for-bit for a given source state.
func (s *Sample) BootstrapCI(statistic func([]float64) float64, conf float64, resamples int, src *simrand.Source) (Interval, error) {
	n := len(s.sorted)
	iv := Interval{Confidence: conf, N: n}
	if n < 2 {
		return iv, ErrInsufficientData
	}
	if resamples < 10 {
		return iv, errTooFewResamples(resamples)
	}
	iv.Estimate = statistic(s.sorted)
	need := resamples + n
	if cap(s.scratch) < need {
		s.scratch = make([]float64, need)
	}
	s.scratch = s.scratch[:need]
	statsBuf, resample := s.scratch[:resamples], s.scratch[resamples:]
	for r := range statsBuf {
		for i := range resample {
			resample[i] = s.sorted[src.Intn(n)]
		}
		statsBuf[r] = statistic(resample)
	}
	sort.Float64s(statsBuf)
	alpha := 1 - conf
	iv.Lo = QuantileSorted(statsBuf, alpha/2)
	iv.Hi = QuantileSorted(statsBuf, 1-alpha/2)
	return iv, nil
}

// FillHistogram bins the sample into h, reusing h's Counts buffer.
// h's bounds and bin count are kept; previous counts are cleared.
func (s *Sample) FillHistogram(h *Histogram) {
	if len(h.Counts) == 0 {
		return
	}
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	binInto(h, s.sorted)
}
