package stats

import (
	"math"
	"testing"

	"cloudvar/internal/simrand"
)

func TestOneWayANOVASameMeans(t *testing.T) {
	src := simrand.New(1)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		g1 := make([]float64, 20)
		g2 := make([]float64, 20)
		g3 := make([]float64, 20)
		for i := range g1 {
			g1[i] = src.Normal(10, 2)
			g2[i] = src.Normal(10, 2)
			g3[i] = src.Normal(10, 2)
		}
		res, err := OneWayANOVA(g1, g2, g3)
		if err != nil {
			t.Fatal(err)
		}
		if res.RejectAt05 {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("type-I error too high: %d/%d", rejections, trials)
	}
}

func TestOneWayANOVADifferentMeans(t *testing.T) {
	src := simrand.New(3)
	g1 := make([]float64, 25)
	g2 := make([]float64, 25)
	for i := range g1 {
		g1[i] = src.Normal(10, 1)
		g2[i] = src.Normal(13, 1)
	}
	res, err := OneWayANOVA(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("3-sigma mean gap not detected: %v", res)
	}
	if res.DFBetween != 1 || res.DFWithin != 48 {
		t.Errorf("df = (%d, %d), want (1, 48)", res.DFBetween, res.DFWithin)
	}
}

func TestOneWayANOVAKnownValue(t *testing.T) {
	// Hand-computed example: groups {1,2,3}, {2,3,4}, {6,7,8}.
	// Grand mean 4. SSB = 3*(2-4)^2 + 3*(3-4)^2 + 3*(7-4)^2 = 42.
	// SSW = 2+2+2 = 6. F = (42/2)/(6/6) = 21.
	res, err := OneWayANOVA([]float64{1, 2, 3}, []float64{2, 3, 4}, []float64{6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FStatistic-21) > 1e-9 {
		t.Errorf("F = %g, want 21", res.FStatistic)
	}
	if !res.RejectAt05 {
		t.Error("F=21 with (2,6) df should reject")
	}
}

func TestOneWayANOVAEdgeCases(t *testing.T) {
	if _, err := OneWayANOVA([]float64{1, 2}); err == nil {
		t.Error("single group should error")
	}
	if _, err := OneWayANOVA([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("tiny group should error")
	}
	// Constant groups, equal means: no rejection.
	res, err := OneWayANOVA([]float64{5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectAt05 {
		t.Error("identical constant groups should not reject")
	}
	// Constant groups, different means: certain rejection.
	res, err = OneWayANOVA([]float64{5, 5}, []float64{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 || !math.IsInf(res.FStatistic, 1) {
		t.Errorf("separated constant groups should reject with F=Inf: %v", res)
	}
}

func TestFCDFKnownValues(t *testing.T) {
	// F(1,1) at x=1 is 0.5 by symmetry.
	if got := FCDF(1, 1, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FCDF(1;1,1) = %g, want 0.5", got)
	}
	// 95th percentile of F(2,6) is 5.1433; CDF there should be 0.95.
	if got := FCDF(5.1433, 2, 6); math.Abs(got-0.95) > 1e-3 {
		t.Errorf("FCDF(5.1433;2,6) = %g, want ~0.95", got)
	}
	if FCDF(0, 3, 3) != 0 {
		t.Error("FCDF at 0 should be 0")
	}
	if got := FCDF(1e9, 3, 3); got < 0.999 {
		t.Errorf("FCDF at huge x = %g", got)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 2 df is Exponential(1/2): CDF(x) = 1-exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-9 {
			t.Errorf("ChiSquareCDF(%g;2) = %g, want %g", x, got, want)
		}
	}
	// 95th percentile of chi-square(1) is 3.8415.
	if got := ChiSquareCDF(3.8415, 1); math.Abs(got-0.95) > 1e-3 {
		t.Errorf("ChiSquareCDF(3.8415;1) = %g, want ~0.95", got)
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x should give 0")
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// Boundary values.
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.8} {
		lhs := RegIncBeta(2.5, 4, x)
		rhs := 1 - RegIncBeta(4, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry broken at x=%g: %g vs %g", x, lhs, rhs)
		}
	}
	// I_x(1,1) = x (uniform).
	for _, x := range []float64{0.2, 0.7} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := RegIncBeta(3, 2, x)
		if v < prev-1e-12 {
			t.Fatalf("RegIncBeta not monotone at %g", x)
		}
		prev = v
	}
}

func TestKruskalWallisSameDistribution(t *testing.T) {
	src := simrand.New(5)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		g1 := make([]float64, 15)
		g2 := make([]float64, 15)
		g3 := make([]float64, 15)
		for i := range g1 {
			g1[i] = src.Exponential(1)
			g2[i] = src.Exponential(1)
			g3[i] = src.Exponential(1)
		}
		res, err := KruskalWallis(g1, g2, g3)
		if err != nil {
			t.Fatal(err)
		}
		if res.RejectAt05 {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("type-I error too high: %d/%d", rejections, trials)
	}
}

func TestKruskalWallisShifted(t *testing.T) {
	src := simrand.New(7)
	g1 := make([]float64, 30)
	g2 := make([]float64, 30)
	for i := range g1 {
		g1[i] = src.Exponential(1)
		g2[i] = src.Exponential(1) + 2
	}
	res, err := KruskalWallis(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("large shift not detected: %v", res)
	}
}

// TestKruskalWallisOnBimodalRuntimes exercises the F5.4 use case: the
// parametric ANOVA assumptions fail for token-bucket bimodal runtimes,
// but rank-based Kruskal-Wallis still separates budget regimes.
func TestKruskalWallisOnBimodalRuntimes(t *testing.T) {
	src := simrand.New(9)
	highBudget := make([]float64, 20) // fast runs
	lowBudget := make([]float64, 20)  // bimodal slow/fast runs
	for i := range highBudget {
		highBudget[i] = src.Normal(100, 3)
		if i%2 == 0 {
			lowBudget[i] = src.Normal(100, 3)
		} else {
			lowBudget[i] = src.Normal(220, 10)
		}
	}
	res, err := KruskalWallis(highBudget, lowBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAt05 {
		t.Errorf("budget regimes not separated: %v", res)
	}
}

func TestKruskalWallisEdgeCases(t *testing.T) {
	if _, err := KruskalWallis([]float64{1, 2}); err == nil {
		t.Error("single group should error")
	}
	if _, err := KruskalWallis([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("tiny group should error")
	}
	// Fully tied data: p = 1.
	res, err := KruskalWallis([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Errorf("all-tied p = %g, want 1", res.PValue)
	}
}
