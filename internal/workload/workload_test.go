package workload

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
)

func twoClientSpec() Spec {
	return Spec{
		AggregateRPS: 4,
		RequestKB:    1024,
		Clients: []Client{
			{ID: "web", RateFraction: 0.7, SLOClass: "interactive", Arrival: Arrival{Process: Poisson}},
			{ID: "etl", RateFraction: 0.3, SLOClass: "batch", Arrival: Arrival{Process: Gamma, CV: 2}},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := twoClientSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"zero-rate", func(s *Spec) { s.AggregateRPS = 0 }, "must be positive"},
		{"neg-size", func(s *Spec) { s.RequestKB = -1 }, "must be >= 0"},
		{"no-clients", func(s *Spec) { s.Clients = nil }, "no clients"},
		{"bad-id", func(s *Spec) { s.Clients[0].ID = "-x" }, "must match"},
		{"dup-id", func(s *Spec) { s.Clients[1].ID = "web" }, "duplicate client"},
		{"zero-fraction", func(s *Spec) { s.Clients[0].RateFraction = 0 }, "outside (0, 1]"},
		{"fraction-sum", func(s *Spec) { s.Clients[0].RateFraction = 0.5 }, "sum to 0.8"},
		{"bad-arrival", func(s *Spec) { s.Clients[1].Arrival.CV = 0 }, "gamma arrivals require cv > 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := twoClientSpec()
			c.edit(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate should fail")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestArrivalValidateExclusivity(t *testing.T) {
	bad := []Arrival{
		{Process: Poisson, CV: 1},
		{Process: Poisson, Times: []float64{1}},
		{Process: Gamma, CV: 1, Shape: 2},
		{Process: Weibull, Shape: 1, CV: 2},
		{Process: Trace, Times: []float64{1}, Shape: 3},
		{Process: Trace},
		{Process: Trace, Times: []float64{2, 1}},
		{Process: Trace, Times: []float64{-1}},
		{Process: Trace, Times: []float64{math.Inf(1)}},
		{Process: ""},
		{Process: "uniform"},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("arrival %d (%+v) should be invalid", i, a)
		}
	}
	good := []Arrival{
		{Process: Poisson},
		{Process: Gamma, CV: 0.5},
		{Process: Weibull, Shape: 2},
		{Process: Trace, Times: []float64{0, 0, 1.5, 3}},
	}
	for i, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("arrival %d: %v", i, err)
		}
	}
}

func TestDefaultsAndSummary(t *testing.T) {
	s := twoClientSpec()
	if got := s.Classes(); !reflect.DeepEqual(got, []string{"batch", "interactive"}) {
		t.Errorf("Classes() = %v", got)
	}
	if got := s.Summary(); got != "web:poisson+etl:gamma @ 4 rps" {
		t.Errorf("Summary() = %q", got)
	}
	if got := (Spec{}).Summary(); got != "none" {
		t.Errorf("zero Summary() = %q", got)
	}
	if got := (Spec{}).EffectiveRequestKB(); got != DefaultRequestKB {
		t.Errorf("EffectiveRequestKB() = %g", got)
	}
	if got := (Client{}).Class(); got != DefaultClass {
		t.Errorf("Class() = %q", got)
	}
	// 1024 KiB = 2^23 bits = 0.008388608 Gbit.
	if got := s.RequestGbit(); math.Abs(got-0.008388608) > 1e-15 {
		t.Errorf("RequestGbit() = %g", got)
	}
}

// TestStreamDeterminism is the engine-level half of the fleet's
// workers=1-vs-8 property: equal (client, duration, substream seed)
// inputs give byte-identical streams.
func TestStreamDeterminism(t *testing.T) {
	spec := twoClientSpec()
	for _, c := range spec.Clients {
		a := c.Stream(spec.AggregateRPS, 300, simrand.New(7).Substream("client/"+c.ID), nil)
		b := c.Stream(spec.AggregateRPS, 300, simrand.New(7).Substream("client/"+c.ID), nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("client %s: equal seeds gave different streams", c.ID)
		}
		if len(a) == 0 {
			t.Fatalf("client %s: empty stream over 300 s at %g rps", c.ID, spec.AggregateRPS*c.RateFraction)
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("client %s: stream not sorted at %d", c.ID, i)
			}
		}
	}
}

// TestStreamIndependence: distinct client ids key distinct substreams
// — two clients with identical processes must not march in lockstep.
func TestStreamIndependence(t *testing.T) {
	c1 := Client{ID: "a", RateFraction: 0.5, Arrival: Arrival{Process: Poisson}}
	c2 := Client{ID: "b", RateFraction: 0.5, Arrival: Arrival{Process: Poisson}}
	s1 := c1.Stream(4, 300, simrand.New(7).Substream("client/"+c1.ID), nil)
	s2 := c2.Stream(4, 300, simrand.New(7).Substream("client/"+c2.ID), nil)
	if reflect.DeepEqual(s1, s2) {
		t.Fatal("distinct client ids produced identical streams")
	}
}

// TestTraceStreamReplay: trace clients replay verbatim, clip to the
// duration, and never consume the random source.
func TestTraceStreamReplay(t *testing.T) {
	c := Client{ID: "replay", RateFraction: 1, Arrival: Arrival{Process: Trace, Times: []float64{0, 1, 2, 250, 301}}}
	src := simrand.New(7).Substream("client/replay")
	before := src.Float64()
	src = simrand.New(7).Substream("client/replay")
	got := c.Stream(4, 300, src, nil)
	if want := []float64{0, 1, 2, 250}; !reflect.DeepEqual(got, want) {
		t.Fatalf("trace stream %v, want %v", got, want)
	}
	if after := src.Float64(); after != before {
		t.Fatal("trace replay consumed the random source")
	}
}

// TestArrivalProcessMoments checks each stochastic process empirically:
// the mean gap must normalise to 1/rate and the gap CV must track the
// configured one. Tolerances are loose (5%) — this is a sanity gate on
// the parameterisation algebra, not a distribution test.
func TestArrivalProcessMoments(t *testing.T) {
	const rate = 2.0
	cases := []struct {
		name   string
		a      Arrival
		wantCV float64
	}{
		{"poisson", Arrival{Process: Poisson}, 1},
		{"gamma-bursty", Arrival{Process: Gamma, CV: 2}, 2},
		{"gamma-regular", Arrival{Process: Gamma, CV: 0.3}, 0.3},
		{"weibull-heavy", Arrival{Process: Weibull, Shape: 0.7}, 1.462},  // sqrt(Γ(1+2/k)/Γ(1+1/k)²−1)
		{"weibull-regular", Arrival{Process: Weibull, Shape: 2}, 0.5227}, // ditto
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := simrand.New(20200225).Substream("moments/" + c.name)
			gaps := make([]float64, 200_000)
			for i := range gaps {
				gaps[i] = c.a.gap(rate, src)
			}
			mean := stats.Mean(gaps)
			if math.Abs(mean-1/rate) > 0.05/rate {
				t.Errorf("mean gap %g, want %g within 5%%", mean, 1/rate)
			}
			cv := stats.CoefficientOfVariation(gaps)
			if math.Abs(cv-c.wantCV) > 0.05*c.wantCV {
				t.Errorf("gap CV %g, want %g within 5%%", cv, c.wantCV)
			}
		})
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	times := []float64{0, 0.25, 1.5, 1.5, 301.75}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, times); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, times) {
		t.Fatalf("round trip %v, want %v", got, times)
	}

	bad := []string{
		"",
		"wrong_header\n1\n",
		"time_sec\nnope\n",
		"time_sec\n2\n1\n", // decreasing
		"time_sec\n-1\n",
	}
	for i, s := range bad {
		if _, err := ReadTraceCSV(strings.NewReader(s)); err == nil {
			t.Errorf("trace %d should be rejected", i)
		}
	}
}

func TestCellMetricsRollups(t *testing.T) {
	m := &CellMetrics{Clients: []ClientMetrics{
		{ID: "a", Class: "interactive", LatencyMs: []float64{1, 2}},
		{ID: "b", Class: "batch", LatencyMs: []float64{3}},
		{ID: "c", Class: "interactive", LatencyMs: []float64{4}},
	}}
	if got := m.Requests(); got != 4 {
		t.Errorf("Requests() = %d", got)
	}
	want := map[string][]float64{"interactive": {1, 2, 4}, "batch": {3}}
	if got := m.ClassLatencies(); !reflect.DeepEqual(got, want) {
		t.Errorf("ClassLatencies() = %v", got)
	}
}

func ExampleSpec_Summary() {
	fmt.Println(twoClientSpec().Summary())
	// Output: web:poisson+etl:gamma @ 4 rps
}
