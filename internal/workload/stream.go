package workload

import (
	"math"

	"cloudvar/internal/simrand"
)

// Stream generates the client's request arrival times over
// [0, durationSec), appending to dst and returning it. Arrivals are
// strictly derived from src: equal (spec, duration, substream) inputs
// give byte-identical streams, which is the determinism contract the
// fleet's workers=1-vs-8 property extends to per-client traffic.
//
// The mean inter-arrival gap is 1/(aggregateRPS × RateFraction) for
// the stochastic processes; Trace clients replay their recorded times
// verbatim (clipped to the duration) and never consume src.
func (c Client) Stream(aggregateRPS, durationSec float64, src *simrand.Source, dst []float64) []float64 {
	if c.Arrival.Process == Trace {
		for _, t := range c.Arrival.Times {
			if t >= durationSec {
				break
			}
			dst = append(dst, t)
		}
		return dst
	}
	rate := aggregateRPS * c.RateFraction
	if rate <= 0 || durationSec <= 0 {
		return dst
	}
	now := 0.0
	for {
		now += c.Arrival.gap(rate, src)
		if now >= durationSec {
			return dst
		}
		dst = append(dst, now)
	}
}

// gap samples one inter-arrival gap with mean 1/rate.
func (a Arrival) gap(rate float64, src *simrand.Source) float64 {
	switch a.Process {
	case Poisson:
		return src.Exponential(rate)
	case Gamma:
		// Shape k = 1/CV² and scale 1/(rate·k) give mean 1/rate and
		// coefficient of variation CV.
		k := 1 / (a.CV * a.CV)
		return src.Gamma(k, 1/(rate*k))
	case Weibull:
		// Scale λ = 1/(rate·Γ(1+1/k)) normalises the mean to 1/rate.
		scale := 1 / (rate * math.Gamma(1+1/a.Shape))
		return src.Weibull(a.Shape, scale)
	default:
		panic("workload: gap called on non-stochastic arrival " + a.Process)
	}
}

// ClientMetrics is one client's served traffic over one campaign cell.
type ClientMetrics struct {
	// ID and Class identify the client within its spec.
	ID    string `json:"id"`
	Class string `json:"class"`
	// LatencyMs is the per-request end-to-end latency (queueing +
	// transfer + RTT) in arrival order; its length is the request
	// count.
	LatencyMs []float64 `json:"latency_ms"`
}

// CellMetrics is the workload outcome of one campaign cell: every
// client's latency series, in spec declaration order. It round-trips
// through JSON exactly (float64s re-encode shortest), so stored cells
// restore bit-identically.
type CellMetrics struct {
	Clients []ClientMetrics `json:"clients"`
}

// Requests counts served requests across all clients.
func (m *CellMetrics) Requests() int {
	n := 0
	for _, c := range m.Clients {
		n += len(c.LatencyMs)
	}
	return n
}

// ClassLatencies groups the latency samples by SLO class, preserving
// client order within a class.
func (m *CellMetrics) ClassLatencies() map[string][]float64 {
	out := make(map[string][]float64)
	for _, c := range m.Clients {
		out[c.Class] = append(out[c.Class], c.LatencyMs...)
	}
	return out
}
