// Package workload is the deterministic multi-client traffic engine's
// data layer: named clients with SLO classes and arrival processes,
// compiled into reproducible per-client request streams.
//
// The paper measures cloud variability with one synthetic iperf flow,
// but its conclusions are consumed by heterogeneous applications:
// latency-critical services sample the network very differently from
// batch transfers, and "When Should I Run My Application Benchmark?"
// (arXiv:2504.11826) shows conclusions flip depending on when and how
// traffic samples the network. A workload Spec describes that traffic
// mix declaratively — each client gets a share of an aggregate request
// rate and an inter-arrival process (Poisson, gamma with a chosen
// coefficient of variation, Weibull, or a recorded trace) — and the
// engine derives every client's stream from a named random substream,
// so the offered traffic is bit-identical across worker counts, resume
// boundaries and machines.
//
// The package deliberately sits at the bottom of the stack (its only
// repo dependency is simrand): netem serves the streams over shaped
// paths, cloudmodel glues the two, fleet fans cells out, and
// internal/expspec compiles the spec document's workloads: section
// into a Spec.
package workload

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Arrival process names.
const (
	// Poisson is memoryless arrivals (exponential gaps, CV = 1) — the
	// classic open-loop client.
	Poisson = "poisson"
	// Gamma is gamma-distributed gaps with a configurable coefficient
	// of variation: CV > 1 models bursty (chat-like) traffic, CV < 1
	// regular traffic.
	Gamma = "gamma"
	// Weibull is Weibull-distributed gaps with a configurable shape:
	// shape < 1 gives heavy-tailed bursts, shape > 1 machine-like
	// regularity.
	Weibull = "weibull"
	// Trace replays recorded arrival times verbatim.
	Trace = "trace"
)

// DefaultRequestKB is the request payload applied when a spec leaves
// RequestKB zero: 64 MiB, a shuffle-block-sized transfer that makes
// queueing visible against multi-gigabit paths.
const DefaultRequestKB = 65536

// DefaultClass is the SLO class assigned to clients that do not name
// one.
const DefaultClass = "standard"

// Spec describes the traffic offered to every cell of a campaign: an
// aggregate request rate split across named clients. The zero value
// means "no workload traffic".
type Spec struct {
	// AggregateRPS is the total offered request rate, requests/second,
	// split across clients by RateFraction.
	AggregateRPS float64 `json:"aggregate_rps"`
	// RequestKB is the per-request payload in KiB (every request
	// transfers this much over the measured path); 0 means
	// DefaultRequestKB.
	RequestKB float64 `json:"request_kb,omitempty"`
	// Clients are the traffic sources, in declaration order.
	Clients []Client `json:"clients"`
}

// Client is one named traffic source.
type Client struct {
	// ID names the client; it keys the client's random substream, so
	// it must be unique within a spec.
	ID string `json:"id"`
	// RateFraction is this client's share of AggregateRPS, in (0, 1];
	// fractions sum to 1 across the spec. Trace clients carry a
	// fraction too (their nominal share, for reporting) but their
	// arrival times come from the recorded trace verbatim.
	RateFraction float64 `json:"rate_fraction"`
	// SLOClass groups clients for reporting (e.g. "interactive",
	// "batch"); empty means DefaultClass.
	SLOClass string `json:"slo_class,omitempty"`
	// Arrival is the inter-arrival process.
	Arrival Arrival `json:"arrival"`
}

// Arrival selects an inter-arrival process. Exactly the fields of the
// chosen process may be set.
type Arrival struct {
	// Process is one of Poisson, Gamma, Weibull or Trace.
	Process string `json:"process"`
	// CV is the coefficient of variation of gamma gaps (required for
	// Gamma, must be > 0).
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull shape parameter (required for Weibull,
	// must be > 0).
	Shape float64 `json:"shape,omitempty"`
	// Times are recorded arrival times in seconds from campaign start,
	// non-decreasing (required for Trace).
	Times []float64 `json:"times,omitempty"`
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ValidClientID reports whether id is acceptable as a client name —
// client IDs key random substreams and appear in labels, so they use
// the same grammar as store run IDs.
func ValidClientID(id string) bool { return idPattern.MatchString(id) }

// Validate checks the spec. The expspec layer performs the same checks
// with document field paths; this is the engine-level gate for specs
// assembled programmatically.
func (s Spec) Validate() error {
	if s.AggregateRPS <= 0 {
		return fmt.Errorf("workload: aggregate rate %g must be positive", s.AggregateRPS)
	}
	if s.RequestKB < 0 {
		return fmt.Errorf("workload: request size %g KB must be >= 0", s.RequestKB)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("workload: spec has no clients")
	}
	seen := make(map[string]bool)
	sum := 0.0
	for i, c := range s.Clients {
		if !ValidClientID(c.ID) {
			return fmt.Errorf("workload: client %d id %q must match %s", i, c.ID, idPattern)
		}
		if seen[c.ID] {
			return fmt.Errorf("workload: duplicate client id %q", c.ID)
		}
		seen[c.ID] = true
		if c.RateFraction <= 0 || c.RateFraction > 1 {
			return fmt.Errorf("workload: client %q rate fraction %g outside (0, 1]", c.ID, c.RateFraction)
		}
		sum += c.RateFraction
		if err := c.Arrival.Validate(); err != nil {
			return fmt.Errorf("workload: client %q: %w", c.ID, err)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("workload: client rate fractions sum to %g, want 1", sum)
	}
	return nil
}

// Validate checks that exactly the chosen process's parameters are
// set.
func (a Arrival) Validate() error {
	switch a.Process {
	case Poisson:
		if a.CV != 0 || a.Shape != 0 || a.Times != nil {
			return fmt.Errorf("poisson arrivals take no parameters")
		}
	case Gamma:
		if a.CV <= 0 {
			return fmt.Errorf("gamma arrivals require cv > 0, got %g", a.CV)
		}
		if a.Shape != 0 || a.Times != nil {
			return fmt.Errorf("gamma arrivals take only cv")
		}
	case Weibull:
		if a.Shape <= 0 {
			return fmt.Errorf("weibull arrivals require shape > 0, got %g", a.Shape)
		}
		if a.CV != 0 || a.Times != nil {
			return fmt.Errorf("weibull arrivals take only shape")
		}
	case Trace:
		if a.CV != 0 || a.Shape != 0 {
			return fmt.Errorf("trace arrivals take only recorded times")
		}
		if len(a.Times) == 0 {
			return fmt.Errorf("trace arrivals require recorded times")
		}
		for i, t := range a.Times {
			if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("trace time %d (%g s) must be finite and >= 0", i, t)
			}
			if i > 0 && t < a.Times[i-1] {
				return fmt.Errorf("trace time %d (%g s) precedes time %d (%g s)", i, t, i-1, a.Times[i-1])
			}
		}
	case "":
		return fmt.Errorf("arrival process required (one of %s)", strings.Join(Processes(), ", "))
	default:
		return fmt.Errorf("unknown arrival process %q (one of %s)", a.Process, strings.Join(Processes(), ", "))
	}
	return nil
}

// Processes lists the known arrival process names.
func Processes() []string { return []string{Poisson, Gamma, Weibull, Trace} }

// EffectiveRequestKB returns the request payload after defaulting.
func (s Spec) EffectiveRequestKB() float64 {
	if s.RequestKB <= 0 {
		return DefaultRequestKB
	}
	return s.RequestKB
}

// RequestGbit is the per-request transfer volume in gigabits — the
// unit the serving engine integrates against Gbps bandwidth envelopes.
func (s Spec) RequestGbit() float64 {
	// KiB × 1024 × 8 bits, over 1e9 bits/gigabit.
	return s.EffectiveRequestKB() * 1024 * 8 / 1e9
}

// Classes returns the spec's distinct SLO classes, sorted.
func (s Spec) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range s.Clients {
		cl := c.Class()
		if !seen[cl] {
			seen[cl] = true
			out = append(out, cl)
		}
	}
	sort.Strings(out)
	return out
}

// Class returns the client's SLO class after defaulting.
func (c Client) Class() string {
	if c.SLOClass == "" {
		return DefaultClass
	}
	return c.SLOClass
}

// Summary renders the spec on one line for CLI banners and run
// listings: "chat:poisson+batch:gamma @ 12 rps", or "none" for the
// zero spec.
func (s Spec) Summary() string {
	if len(s.Clients) == 0 {
		return "none"
	}
	parts := make([]string, len(s.Clients))
	for i, c := range s.Clients {
		parts[i] = c.ID + ":" + c.Arrival.Process
	}
	return fmt.Sprintf("%s @ %g rps", strings.Join(parts, "+"), s.AggregateRPS)
}
