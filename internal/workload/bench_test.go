package workload

import (
	"fmt"
	"testing"

	"cloudvar/internal/simrand"
)

// BenchmarkWorkloadStreamGen measures per-client arrival-stream
// generation — the inner loop every traffic-carrying cell pays once
// per client per repetition. The dst buffer is reused across
// iterations, so a steady-state iteration should stay allocation-free;
// benchgate gates allocations, not wall time.
//
//	go test ./internal/workload -run '^$' -bench BenchmarkWorkloadStreamGen -benchmem -count 10
func BenchmarkWorkloadStreamGen(b *testing.B) {
	const durationSec = 3600
	clients := []Client{
		{ID: "poisson", RateFraction: 1, Arrival: Arrival{Process: Poisson}},
		{ID: "gamma", RateFraction: 1, Arrival: Arrival{Process: Gamma, CV: 2}},
		{ID: "weibull", RateFraction: 1, Arrival: Arrival{Process: Weibull, Shape: 0.7}},
	}
	for _, c := range clients {
		b.Run(fmt.Sprintf("process=%s", c.Arrival.Process), func(b *testing.B) {
			src := simrand.New(42).Substream("bench/" + c.ID)
			var dst []float64
			dst = c.Stream(4, durationSec, src, dst) // size the buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = c.Stream(4, durationSec, src, dst[:0])
			}
			if len(dst) == 0 {
				b.Fatal("empty stream")
			}
		})
	}
}
