package spark

import (
	"math"
	"testing"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
)

// burstCluster builds a cluster of burstable instances with unshaped
// networking, isolating the CPU-credit mechanism.
func burstCluster(t *testing.T, budgetCPUSec float64, seed uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes: 4, SlotsPerNode: 2,
		NewShaper:   func(int) netem.Shaper { return &netem.FixedShaper{RateGbps: 10} },
		IngressGbps: 10,
		CPUBurst: &CPUBurstParams{
			BudgetCPUSec: budgetCPUSec,
			BaselineFrac: 0.25,
			EarnRate:     0.25,
		},
	}, simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func computeJob(taskSec float64, tasks int) Job {
	return Job{
		Name:   "cpu-heavy",
		Stages: []StageSpec{{Name: "compute", Tasks: tasks, ComputeSec: taskSec}},
	}
}

func TestCPUBurstParamsValidation(t *testing.T) {
	bad := []CPUBurstParams{
		{BudgetCPUSec: 0, BaselineFrac: 0.3, EarnRate: 0.3},
		{BudgetCPUSec: 100, BaselineFrac: 0, EarnRate: 0.3},
		{BudgetCPUSec: 100, BaselineFrac: 1.5, EarnRate: 0.3},
		{BudgetCPUSec: 100, BaselineFrac: 0.3, EarnRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should fail", i)
		}
	}
	cfg := ClusterConfig{
		Nodes: 2, SlotsPerNode: 1,
		NewShaper:   func(int) netem.Shaper { return &netem.FixedShaper{RateGbps: 1} },
		IngressGbps: 1,
		CPUBurst:    &CPUBurstParams{BudgetCPUSec: -1, BaselineFrac: 0.3, EarnRate: 0.3},
	}
	if _, err := NewCluster(cfg, simrand.New(1)); err == nil {
		t.Error("cluster must reject invalid burst params")
	}
}

func TestCPUBurstFullSpeedWithinBudget(t *testing.T) {
	// Plenty of credits: tasks run at full speed.
	c := burstCluster(t, 10000, 1)
	res, err := c.RunJob(computeJob(10, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Runtime()-10) > 0.5 {
		t.Errorf("runtime %g, want ~10 (one full-speed wave)", res.Runtime())
	}
}

func TestCPUBurstThrottlesAfterDepletion(t *testing.T) {
	// 15 CPU-s of credits per slot; a 40 CPU-s task runs 15 s fast,
	// then the remaining 25 CPU-s at effective rate baseline+earn
	// behaviour: with low = earn = 0.25, the bucket pins and the rest
	// runs at 0.25 speed -> ~15 + 25/0.25 = 115 s (plus re-engage
	// wiggles).
	c := burstCluster(t, 15, 2)
	res, err := c.RunJob(computeJob(40, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime() < 80 {
		t.Errorf("runtime %g too fast: credits should have run out", res.Runtime())
	}
	credits := c.CPUCredits()
	if credits == nil {
		t.Fatal("CPUCredits nil on burst cluster")
	}
	for i, cr := range credits {
		// 2 slots per node, nearly depleted.
		if cr > 5 {
			t.Errorf("node %d credits %g, want near zero", i, cr)
		}
	}
}

// TestCPUBurstHistoryDependence is the paper's point: two identical
// benchmark runs differ because the first drained the (invisible)
// CPU-credit bucket.
func TestCPUBurstHistoryDependence(t *testing.T) {
	// 50 credits per slot: the first 50 CPU-s job drains 37.5 (net
	// 0.75/s), leaving the second run to hit the baseline mid-task.
	c := burstCluster(t, 50, 3)
	first, err := c.RunJob(computeJob(50, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.RunJob(computeJob(50, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Runtime() < first.Runtime()*1.2 {
		t.Errorf("no history dependence: %.1f then %.1f s", first.Runtime(), second.Runtime())
	}
}

func TestCPUBurstRestEarnsCredits(t *testing.T) {
	c := burstCluster(t, 60, 4)
	if _, err := c.RunJob(computeJob(60, 8), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	drained, err := c.RunJob(computeJob(30, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Rest long enough to re-earn a meaningful balance (earn 0.25/s).
	c.Rest(200)
	rested, err := c.RunJob(computeJob(30, 8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rested.Runtime() >= drained.Runtime() {
		t.Errorf("rest did not help: drained %.1f s vs rested %.1f s",
			drained.Runtime(), rested.Runtime())
	}
}

func TestCPUCreditsNilWithoutBurst(t *testing.T) {
	c := fixedCluster(t, 2, 1)
	if c.CPUCredits() != nil {
		t.Error("CPUCredits should be nil without CPUBurst")
	}
}
