package spark

import (
	"math"
	"strings"
	"testing"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/tokenbucket"
)

// fixedCluster builds a small cluster with unshaped 10 Gbps NICs.
func fixedCluster(t *testing.T, nodes, slots int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes: nodes, SlotsPerNode: slots,
		NewShaper:   func(int) netem.Shaper { return &netem.FixedShaper{RateGbps: 10} },
		IngressGbps: 10,
	}, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bucketCluster builds a cluster where every node sits behind its own
// token bucket with the given initial budget.
func bucketCluster(t *testing.T, nodes, slots int, budgetGbit float64, seed uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes: nodes, SlotsPerNode: slots,
		NewShaper: func(int) netem.Shaper {
			sh, err := netem.NewBucketShaper(tokenbucket.Params{
				BudgetGbit: 5000, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			sh.Bucket.SetTokens(budgetGbit)
			return sh
		},
		IngressGbps:      10,
		ComputeNoiseFrac: 0.03,
	}, simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simpleJob(shuffleGbit float64) Job {
	return Job{
		Name: "simple",
		Stages: []StageSpec{
			{Name: "map", Tasks: 8, ComputeSec: 10},
			{Name: "reduce", Tasks: 8, ShuffleGbit: shuffleGbit, ComputeSec: 5},
		},
	}
}

func TestJobValidation(t *testing.T) {
	bad := []Job{
		{},
		{Name: "x"},
		{Name: "x", Stages: []StageSpec{{Name: "s", Tasks: 0}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", Tasks: 1, ComputeSec: -1}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", Tasks: 1, ShuffleGbit: -1}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", Tasks: 1, SkewFrac: -1}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", Tasks: 1, HotPeerFrac: 2}}},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %d should fail validation", i)
		}
	}
	if err := simpleJob(1).Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestClusterValidation(t *testing.T) {
	src := simrand.New(1)
	newShaper := func(int) netem.Shaper { return &netem.FixedShaper{RateGbps: 1} }
	bad := []ClusterConfig{
		{Nodes: 1, SlotsPerNode: 1, NewShaper: newShaper, IngressGbps: 1},
		{Nodes: 2, SlotsPerNode: 0, NewShaper: newShaper, IngressGbps: 1},
		{Nodes: 2, SlotsPerNode: 1, IngressGbps: 1},
		{Nodes: 2, SlotsPerNode: 1, NewShaper: newShaper, IngressGbps: 0},
		{Nodes: 2, SlotsPerNode: 1, NewShaper: newShaper, IngressGbps: 1, ComputeNoiseFrac: -1},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg, src); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if _, err := NewCluster(ClusterConfig{
		Nodes: 2, SlotsPerNode: 1, NewShaper: newShaper, IngressGbps: 1,
	}, nil); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := NewCluster(ClusterConfig{
		Nodes: 2, SlotsPerNode: 1,
		NewShaper:   func(int) netem.Shaper { return nil },
		IngressGbps: 1,
	}, src); err == nil {
		t.Error("nil shaper from factory should fail")
	}
}

func TestComputeOnlyJobRuntime(t *testing.T) {
	c := fixedCluster(t, 4, 2)
	job := Job{
		Name:   "compute",
		Stages: []StageSpec{{Name: "s", Tasks: 8, ComputeSec: 10}},
	}
	res, err := c.RunJob(job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 8 tasks on 8 slots: one wave of exactly 10 s (no noise).
	if math.Abs(res.Runtime()-10) > 1e-6 {
		t.Errorf("runtime = %g, want 10", res.Runtime())
	}
}

func TestWavesScheduling(t *testing.T) {
	c := fixedCluster(t, 4, 2)
	job := Job{
		Name:   "waves",
		Stages: []StageSpec{{Name: "s", Tasks: 16, ComputeSec: 10}},
	}
	res, err := c.RunJob(job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 16 tasks on 8 slots: two waves.
	if math.Abs(res.Runtime()-20) > 1e-6 {
		t.Errorf("runtime = %g, want 20", res.Runtime())
	}
	// All nodes should have run 4 tasks each.
	perNode := map[int]int{}
	for _, tt := range res.Stages[0].Tasks {
		perNode[tt.ExecNode]++
	}
	for node, count := range perNode {
		if count != 4 {
			t.Errorf("node %d ran %d tasks, want 4", node, count)
		}
	}
}

func TestShuffleAddsNetworkTime(t *testing.T) {
	cNoNet := fixedCluster(t, 4, 2)
	resA, err := cNoNet.RunJob(simpleJob(0.001), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cNet := fixedCluster(t, 4, 2)
	resB, err := cNet.RunJob(simpleJob(20), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Runtime() <= resA.Runtime() {
		t.Errorf("shuffle volume did not slow the job: %g vs %g",
			resA.Runtime(), resB.Runtime())
	}
	// Shuffle completion must be recorded between start and end.
	for _, tt := range resB.Stages[1].Tasks {
		if tt.PeerNode < 0 {
			t.Error("shuffle task missing peer")
		}
		if tt.ShuffleAt < tt.Start || tt.ShuffleAt > tt.End {
			t.Errorf("shuffle time %g outside [%g, %g]", tt.ShuffleAt, tt.Start, tt.End)
		}
	}
}

// TestBudgetSensitivity is the core Section 4 behaviour: the same job
// on the same cluster runs slower when the token budget starts low.
func TestBudgetSensitivity(t *testing.T) {
	full := bucketCluster(t, 4, 2, 5000, 7)
	resFull, err := full.RunJob(simpleJob(30), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	empty := bucketCluster(t, 4, 2, 0, 7)
	resEmpty, err := empty.RunJob(simpleJob(30), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resEmpty.Runtime() < resFull.Runtime()*1.2 {
		t.Errorf("empty budget not slower: %g vs %g", resEmpty.Runtime(), resFull.Runtime())
	}
}

// TestStragglerFormation reproduces Figure 18's mechanism: with a
// skewed shuffle and a budget sized to deplete only the hot node, the
// hot node's egress collapses and the stage straggles.
func TestStragglerFormation(t *testing.T) {
	c := bucketCluster(t, 6, 2, 120, 11)
	job := Job{
		Name: "skewed",
		Stages: []StageSpec{
			{Name: "scan", Tasks: 12, ComputeSec: 5},
			{
				Name: "join", Tasks: 36, ShuffleGbit: 15,
				ComputeSec: 5, HotPeerFrac: 0.5,
			},
		},
	}
	res, err := c.RunJob(job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tokens := c.NodeTokens()
	// The hot node (0) must have drained far more budget than the
	// median node.
	others := 0.0
	for _, v := range tokens[1:] {
		others += v
	}
	others /= float64(len(tokens) - 1)
	if tokens[0] > others*0.5 {
		t.Errorf("hot node tokens %g not depleted vs others %g", tokens[0], others)
	}
	// And its egress volume dominates.
	if res.NodeGbit[0] < 1.5*res.NodeGbit[2] {
		t.Errorf("hot node moved %g Gbit vs node2 %g; expected skew", res.NodeGbit[0], res.NodeGbit[2])
	}
	// Straggling tasks: the slowest join task should be much slower
	// than the median one.
	if res.MaxStraggle() < 1.5 {
		t.Errorf("straggle ratio %g too small for a throttled hot node", res.MaxStraggle())
	}
}

func TestSamplerCadence(t *testing.T) {
	c := fixedCluster(t, 4, 2)
	var times []float64
	_, err := c.RunJob(simpleJob(10), RunOptions{
		SampleInterval: 1,
		Sampler: func(ts float64, rates, tokens []float64) {
			times = append(times, ts)
			if len(rates) != 4 || len(tokens) != 4 {
				t.Errorf("sampler got %d rates, %d tokens", len(rates), len(tokens))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 5 {
		t.Fatalf("only %d samples", len(times))
	}
	for i := 1; i < len(times); i++ {
		if math.Abs(times[i]-times[i-1]-1) > 1e-9 {
			t.Fatalf("sample spacing %g at %d", times[i]-times[i-1], i)
		}
	}
	// Fixed shapers have no buckets: tokens are NaN.
	_, err = c.RunJob(simpleJob(1), RunOptions{Sampler: func(float64, []float64, []float64) {}})
	if err == nil {
		t.Error("sampler without interval should error")
	}
}

func TestNodeTokensNaNForUnshaped(t *testing.T) {
	c := fixedCluster(t, 3, 1)
	for i, v := range c.NodeTokens() {
		if !math.IsNaN(v) {
			t.Errorf("node %d tokens = %g, want NaN for fixed shaper", i, v)
		}
	}
}

func TestRestRefillsBuckets(t *testing.T) {
	c := bucketCluster(t, 4, 2, 0, 3)
	before := c.NodeTokens()
	c.Rest(100)
	after := c.NodeTokens()
	for i := range after {
		if after[i] <= before[i] {
			t.Errorf("node %d tokens did not refill: %g -> %g", i, before[i], after[i])
		}
		if math.Abs(after[i]-100) > 1e-6 {
			t.Errorf("node %d tokens = %g after 100 s rest, want 100", i, after[i])
		}
	}
}

func TestConsecutiveJobsShareState(t *testing.T) {
	// The Figure 19 pathology: back-to-back runs on the same cluster
	// get slower as budgets deplete.
	// Each run moves ~60 Gbit per node; 100 Gbit of tokens deplete
	// during the second run.
	c := bucketCluster(t, 4, 2, 100, 5)
	var runtimes []float64
	for i := 0; i < 4; i++ {
		res, err := c.RunJob(simpleJob(30), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		runtimes = append(runtimes, res.Runtime())
	}
	if runtimes[3] < runtimes[0]*1.1 {
		t.Errorf("no degradation across consecutive runs: %v", runtimes)
	}
}

func TestJobTotalShuffle(t *testing.T) {
	j := simpleJob(2)
	if got := j.TotalShuffleGbit(); math.Abs(got-16) > 1e-12 {
		t.Errorf("TotalShuffleGbit = %g, want 16", got)
	}
}

func TestJobResultBookkeeping(t *testing.T) {
	c := fixedCluster(t, 4, 2)
	res, err := c.RunJob(simpleJob(5), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Job != "simple" || len(res.Stages) != 2 {
		t.Errorf("result metadata wrong: %+v", res)
	}
	if !strings.HasPrefix(res.Stages[0].Name, "map") {
		t.Errorf("stage order wrong: %v", res.Stages[0].Name)
	}
	total := 0.0
	for _, g := range res.NodeGbit {
		total += g
	}
	want := simpleJob(5).TotalShuffleGbit()
	if math.Abs(total-want) > want*0.01 {
		t.Errorf("node egress total %g != shuffle volume %g", total, want)
	}
	for _, sr := range res.Stages {
		if sr.End < sr.Start {
			t.Error("stage times inverted")
		}
		if len(sr.Tasks) == 0 {
			t.Error("stage recorded no tasks")
		}
	}
}

func BenchmarkRunJobBucketed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{
			Nodes: 12, SlotsPerNode: 4,
			NewShaper: func(int) netem.Shaper {
				sh, _ := netem.NewBucketShaper(tokenbucket.Params{
					BudgetGbit: 1000, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
				})
				return sh
			},
			IngressGbps:      10,
			ComputeNoiseFrac: 0.03,
		}, simrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		job := Job{
			Name: "bench",
			Stages: []StageSpec{
				{Name: "map", Tasks: 96, ComputeSec: 10},
				{Name: "reduce", Tasks: 96, ShuffleGbit: 10, ComputeSec: 10},
			},
		}
		if _, err := c.RunJob(job, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
