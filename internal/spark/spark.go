// Package spark simulates a Spark-like big-data execution engine on
// top of the netem network emulator: jobs decompose into stages,
// stages into tasks, tasks occupy executor slots and perform a
// shuffle-read over the emulated network followed by a compute phase.
//
// This is the substitute for the paper's 12-node Spark 2.4.0 + Hadoop
// 2.7.3 cluster (Table 4). The paper's application-level findings —
// budget-dependent runtimes (Figures 15-17), token-bucket stragglers
// (Figure 18), broken experiment independence (Figure 19) — all arise
// from the interaction between shuffle traffic and per-node egress
// shaping, which this simulator models directly: a node whose token
// bucket empties serves its shuffle partitions at the low rate, and
// every task reading from it inherits the slowdown.
package spark

import (
	"fmt"
	"math"
	"sort"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/tokenbucket"
)

// StageSpec describes one stage of a job.
type StageSpec struct {
	Name string
	// Tasks is the stage's task count.
	Tasks int
	// ComputeSec is the CPU time per task (before noise).
	ComputeSec float64
	// ShuffleGbit is the volume each task reads over the network from
	// a remote node's map output; 0 for input stages reading local
	// storage.
	ShuffleGbit float64
	// SkewFrac adds per-task lognormal duration skew (sigma); 0 means
	// perfectly uniform tasks.
	SkewFrac float64
	// HotPeerFrac is the fraction of shuffle reads directed at a
	// single "hot" node holding the popular partitions (node 0, or
	// node 1 when the reader is node 0). Skewed shuffles are how the
	// paper's scheduling imbalances turn a shared token-bucket policy
	// into a single-node straggler (Figure 18).
	HotPeerFrac float64
}

// Validate checks the stage description.
func (s StageSpec) Validate() error {
	switch {
	case s.Tasks <= 0:
		return fmt.Errorf("spark: stage %q needs tasks > 0", s.Name)
	case s.ComputeSec < 0:
		return fmt.Errorf("spark: stage %q has negative compute", s.Name)
	case s.ShuffleGbit < 0:
		return fmt.Errorf("spark: stage %q has negative shuffle volume", s.Name)
	case s.SkewFrac < 0:
		return fmt.Errorf("spark: stage %q has negative skew", s.Name)
	case s.HotPeerFrac < 0 || s.HotPeerFrac > 1:
		return fmt.Errorf("spark: stage %q hot-peer fraction outside [0,1]", s.Name)
	}
	return nil
}

// Job is an ordered sequence of stages.
type Job struct {
	Name   string
	Stages []StageSpec
}

// Validate checks the job description.
func (j Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("spark: job needs a name")
	}
	if len(j.Stages) == 0 {
		return fmt.Errorf("spark: job %q has no stages", j.Name)
	}
	for _, s := range j.Stages {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalShuffleGbit returns the job's total network volume.
func (j Job) TotalShuffleGbit() float64 {
	total := 0.0
	for _, s := range j.Stages {
		total += float64(s.Tasks) * s.ShuffleGbit
	}
	return total
}

// ClusterConfig describes the simulated cluster.
type ClusterConfig struct {
	// Nodes is the cluster size (Table 4: 12).
	Nodes int
	// SlotsPerNode is the number of concurrent tasks per node.
	SlotsPerNode int
	// NewShaper builds the egress shaper for node i. Called once per
	// node at cluster construction.
	NewShaper func(node int) netem.Shaper
	// IngressGbps is each node's ingress line rate.
	IngressGbps float64
	// ComputeNoiseFrac is the lognormal sigma applied to every task's
	// compute time (CPU-side variability; kept small so network
	// effects dominate, mirroring the paper's isolated testbed).
	ComputeNoiseFrac float64
	// NodeSpeedNoiseFrac, when positive, draws a per-node speed
	// factor (lognormal sigma) at cluster construction. Unlike
	// per-task noise, this does not average out across tasks — it is
	// the "noisy neighbour" run-to-run variability real clouds show
	// (Figure 13's CONFIRM analyses depend on it). Leave zero for
	// isolated-testbed experiments (Figures 15-19).
	NodeSpeedNoiseFrac float64
	// CPUBurst, when non-nil, gives every executor slot (vCPU) a
	// burstable-instance credit bucket — the paper's Section 4.2
	// observation that "cloud providers use token buckets for other
	// resources such as CPU scheduling", which makes even
	// compute-bound workloads history-dependent.
	CPUBurst *CPUBurstParams
}

// CPUBurstParams models t2/t3-style CPU credits per vCPU: tasks run
// at full speed while credits remain and at BaselineFrac speed once
// depleted; credits accrue at EarnRate CPU-seconds per wall second up
// to the budget cap.
type CPUBurstParams struct {
	// BudgetCPUSec is the credit cap (and initial balance).
	BudgetCPUSec float64
	// BaselineFrac is the throttled speed fraction (t3.large: ~0.3).
	BaselineFrac float64
	// EarnRate is the accrual rate in CPU-seconds per second;
	// providers set it equal to the baseline fraction.
	EarnRate float64
}

// Validate checks the burst parameters.
func (p CPUBurstParams) Validate() error {
	switch {
	case p.BudgetCPUSec <= 0:
		return fmt.Errorf("spark: CPU burst budget must be positive")
	case p.BaselineFrac <= 0 || p.BaselineFrac > 1:
		return fmt.Errorf("spark: CPU baseline fraction outside (0,1]")
	case p.EarnRate < 0:
		return fmt.Errorf("spark: negative CPU earn rate")
	}
	return nil
}

// bucketParams converts to a token bucket in CPU-seconds: high rate 1
// (full speed), low rate = baseline.
func (p CPUBurstParams) bucketParams() tokenbucket.Params {
	return tokenbucket.Params{
		BudgetGbit: p.BudgetCPUSec,
		RefillGbps: p.EarnRate,
		HighGbps:   1,
		LowGbps:    p.BaselineFrac,
	}
}

// Validate checks the configuration.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("spark: need at least 2 nodes, got %d", c.Nodes)
	case c.SlotsPerNode <= 0:
		return fmt.Errorf("spark: need positive slots per node")
	case c.NewShaper == nil:
		return fmt.Errorf("spark: need a shaper factory")
	case c.IngressGbps <= 0:
		return fmt.Errorf("spark: need positive ingress rate")
	case c.ComputeNoiseFrac < 0:
		return fmt.Errorf("spark: negative compute noise")
	case c.NodeSpeedNoiseFrac < 0:
		return fmt.Errorf("spark: negative node speed noise")
	}
	if c.CPUBurst != nil {
		if err := c.CPUBurst.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Cluster is a live simulated cluster. Create a fresh Cluster per
// experiment repetition to model "fresh VMs"; reuse one across
// repetitions to model the paper's Figure 19 carry-over state.
type Cluster struct {
	cfg       ClusterConfig
	net       *netem.Network
	shapers   []netem.Shaper
	src       *simrand.Source
	nodeSpeed []float64 // per-node compute-time multipliers
	// cpuBuckets[node][slot] holds per-vCPU credit buckets when
	// CPUBurst is configured; slotFreedAt tracks when each slot last
	// went idle so credits accrue across gaps.
	cpuBuckets  [][]*tokenbucket.Bucket
	slotFreedAt [][]float64
}

// NewCluster builds the cluster and its emulated network.
func NewCluster(cfg ClusterConfig, src *simrand.Source) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("spark: nil random source")
	}
	c := &Cluster{cfg: cfg, net: netem.NewNetwork(), src: src}
	c.nodeSpeed = make([]float64, cfg.Nodes)
	for i := range c.nodeSpeed {
		c.nodeSpeed[i] = 1
		if cfg.NodeSpeedNoiseFrac > 0 {
			c.nodeSpeed[i] = src.LogNormal(0, cfg.NodeSpeedNoiseFrac)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		sh := cfg.NewShaper(i)
		if sh == nil {
			return nil, fmt.Errorf("spark: shaper factory returned nil for node %d", i)
		}
		c.shapers = append(c.shapers, sh)
		if _, err := c.net.AddNIC(nodeName(i), sh, cfg.IngressGbps); err != nil {
			return nil, err
		}
	}
	if cfg.CPUBurst != nil {
		bp := cfg.CPUBurst.bucketParams()
		c.cpuBuckets = make([][]*tokenbucket.Bucket, cfg.Nodes)
		c.slotFreedAt = make([][]float64, cfg.Nodes)
		for i := range c.cpuBuckets {
			c.cpuBuckets[i] = make([]*tokenbucket.Bucket, cfg.SlotsPerNode)
			c.slotFreedAt[i] = make([]float64, cfg.SlotsPerNode)
			for sIdx := range c.cpuBuckets[i] {
				bucket, err := tokenbucket.New(bp)
				if err != nil {
					return nil, fmt.Errorf("spark: CPU bucket: %w", err)
				}
				c.cpuBuckets[i][sIdx] = bucket
			}
		}
	}
	return c, nil
}

// CPUCredits returns the summed remaining CPU credits per node, or
// nil when CPU bursting is not configured.
func (c *Cluster) CPUCredits() []float64 {
	if c.cpuBuckets == nil {
		return nil
	}
	out := make([]float64, c.cfg.Nodes)
	for i, slots := range c.cpuBuckets {
		for _, b := range slots {
			out[i] += b.Tokens()
		}
	}
	return out
}

func nodeName(i int) string { return fmt.Sprintf("node%02d", i) }

// Now returns the cluster's virtual time.
func (c *Cluster) Now() float64 { return c.net.Now() }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Shaper returns node i's egress shaper (for budget inspection and
// experiment resets).
func (c *Cluster) Shaper(i int) netem.Shaper { return c.shapers[i] }

// NodeTokens returns each node's remaining token budget, or NaN for
// nodes whose shaper has no bucket. This is Figure 15/18's right-hand
// axis.
func (c *Cluster) NodeTokens() []float64 {
	out := make([]float64, c.cfg.Nodes)
	for i, sh := range c.shapers {
		if bs, ok := sh.(*netem.BucketShaper); ok {
			out[i] = bs.Bucket.Tokens()
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Rest idles the whole cluster for dt seconds, refilling token
// buckets — the paper's F5.4 "rest the infrastructure" protocol.
func (c *Cluster) Rest(dt float64) {
	if dt < 0 {
		panic("spark: negative rest")
	}
	c.net.RunUntil(c.net.Now() + dt)
}

// TaskTrace records one task's lifecycle.
type TaskTrace struct {
	Stage     int
	Index     int
	ExecNode  int
	PeerNode  int // shuffle source; -1 for input stages
	Start     float64
	ShuffleAt float64 // when the shuffle read finished (== Start if none)
	End       float64
}

// StageResult summarises one executed stage.
type StageResult struct {
	Name     string
	Start    float64
	End      float64
	Tasks    []TaskTrace
	Straggle float64 // slowest/median task duration ratio
}

// JobResult is the outcome of one job execution.
type JobResult struct {
	Job      string
	Start    float64
	End      float64
	Stages   []StageResult
	NodeGbit []float64 // per-node egress volume during this job
}

// Runtime returns the job's wall-clock duration.
func (r JobResult) Runtime() float64 { return r.End - r.Start }

// MaxStraggle returns the worst per-stage straggler ratio.
func (r JobResult) MaxStraggle() float64 {
	worst := 0.0
	for _, s := range r.Stages {
		if s.Straggle > worst {
			worst = s.Straggle
		}
	}
	return worst
}

// Sampler, when set on RunOptions, is invoked at fixed virtual-time
// intervals during job execution with the per-node egress rates and
// token budgets — the instrumentation behind Figures 15 and 18.
type Sampler func(t float64, nodeRatesGbps, nodeTokensGbit []float64)

// RunOptions tunes one job execution.
type RunOptions struct {
	// SampleInterval, if positive, invokes Sampler every interval.
	SampleInterval float64
	Sampler        Sampler
}

// RunJob executes the job to completion and returns its result. Jobs
// run one at a time per cluster (the paper benchmarks applications in
// isolation).
func (c *Cluster) RunJob(job Job, opts RunOptions) (JobResult, error) {
	if err := job.Validate(); err != nil {
		return JobResult{}, err
	}
	if opts.Sampler != nil && opts.SampleInterval <= 0 {
		return JobResult{}, fmt.Errorf("spark: sampler requires positive interval")
	}

	res := JobResult{Job: job.Name, Start: c.net.Now()}
	startGbit := c.nodeMoved()

	nextSample := math.Inf(1)
	if opts.Sampler != nil {
		nextSample = c.net.Now() + opts.SampleInterval
	}

	for si, spec := range job.Stages {
		sr, err := c.runStage(si, spec, &nextSample, opts)
		if err != nil {
			return res, fmt.Errorf("spark: job %q stage %q: %w", job.Name, spec.Name, err)
		}
		res.Stages = append(res.Stages, sr)
	}

	res.End = c.net.Now()
	endGbit := c.nodeMoved()
	res.NodeGbit = make([]float64, c.cfg.Nodes)
	for i := range res.NodeGbit {
		res.NodeGbit[i] = endGbit[i] - startGbit[i]
	}
	return res, nil
}

func (c *Cluster) nodeMoved() []float64 {
	out := make([]float64, c.cfg.Nodes)
	for i := 0; i < c.cfg.Nodes; i++ {
		nic, _ := c.net.NIC(nodeName(i))
		out[i] = nic.MovedGbit()
	}
	return out
}

// computeEvent is a pending task-compute completion.
type computeEvent struct {
	at   float64
	task *TaskTrace
	node int
	slot int
}

func (c *Cluster) runStage(stageIdx int, spec StageSpec, nextSample *float64, opts RunOptions) (StageResult, error) {
	sr := StageResult{Name: spec.Name, Start: c.net.Now()}

	// freeList holds each node's available slot indices; slot
	// identity matters when per-vCPU CPU-credit buckets are active.
	freeList := make([][]int, c.cfg.Nodes)
	for i := range freeList {
		for sIdx := 0; sIdx < c.cfg.SlotsPerNode; sIdx++ {
			freeList[i] = append(freeList[i], sIdx)
		}
	}
	pending := spec.Tasks
	launched := 0
	remaining := spec.Tasks
	var computes []computeEvent
	traces := make([]*TaskTrace, 0, spec.Tasks)

	taskDuration := func(node, slot int) float64 {
		d := spec.ComputeSec * c.nodeSpeed[node]
		if c.cfg.ComputeNoiseFrac > 0 {
			d *= c.src.LogNormal(0, c.cfg.ComputeNoiseFrac)
		}
		if spec.SkewFrac > 0 {
			d *= c.src.LogNormal(0, spec.SkewFrac)
		}
		if c.cpuBuckets != nil {
			bucket := c.cpuBuckets[node][slot]
			// Credits accrued while the slot sat idle (or waited on
			// the shuffle read).
			if gap := c.net.Now() - c.slotFreedAt[node][slot]; gap > 0 {
				bucket.Idle(gap)
			}
			c.slotFreedAt[node][slot] = c.net.Now()
			// d CPU-seconds of work against the credit bucket.
			d = bucket.TimeToTransfer(1, d)
		}
		return d
	}

	// dispatch fills free slots with pending tasks, round-robin over
	// nodes for deterministic balance.
	dispatch := func() {
		for pending > 0 {
			// Pick the node with the most free slots (ties by index),
			// mimicking Spark's spread-out default.
			best := -1
			for i := 0; i < c.cfg.Nodes; i++ {
				if len(freeList[i]) > 0 && (best < 0 || len(freeList[i]) > len(freeList[best])) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			slot := freeList[best][len(freeList[best])-1]
			freeList[best] = freeList[best][:len(freeList[best])-1]
			pending--
			idx := launched
			launched++

			tt := &TaskTrace{
				Stage: stageIdx, Index: idx, ExecNode: best,
				PeerNode: -1, Start: c.net.Now(),
			}
			traces = append(traces, tt)

			if spec.ShuffleGbit > 0 {
				// Shuffle source: spread deterministically over the
				// other nodes so every node serves map output, as in
				// an all-to-all shuffle — except for the hot-partition
				// fraction, which always reads from the hot node.
				peer := (best + 1 + idx%(c.cfg.Nodes-1)) % c.cfg.Nodes
				if spec.HotPeerFrac > 0 && c.src.Bernoulli(spec.HotPeerFrac) {
					peer = 0
					if best == 0 {
						peer = 1
					}
				}
				tt.PeerNode = peer
				node := best
				nodeSlot := slot
				trace := tt
				_, err := c.net.StartFlow(nodeName(peer), nodeName(best),
					spec.ShuffleGbit, math.Inf(1), func(now float64) {
						trace.ShuffleAt = now
						computes = append(computes, computeEvent{
							at: now + taskDuration(node, nodeSlot), task: trace,
							node: node, slot: nodeSlot,
						})
					})
				if err != nil {
					// Flow creation only fails on programmer error
					// (bad names/sizes validated above).
					panic(fmt.Sprintf("spark: shuffle flow: %v", err))
				}
			} else {
				tt.ShuffleAt = tt.Start
				computes = append(computes, computeEvent{
					at: c.net.Now() + taskDuration(best, slot), task: tt,
					node: best, slot: slot,
				})
			}
		}
	}

	for remaining > 0 {
		dispatch()

		// Earliest pending compute completion.
		nextCompute := math.Inf(1)
		for _, ev := range computes {
			if ev.at < nextCompute {
				nextCompute = ev.at
			}
		}

		bound := math.Min(nextCompute, *nextSample)
		if math.IsInf(bound, 1) && c.net.ActiveFlows() == 0 {
			return sr, fmt.Errorf("deadlock: no computes, no flows, %d tasks unfinished", remaining)
		}

		if c.net.ActiveFlows() > 0 {
			if math.IsInf(bound, 1) {
				// Only flows in flight: run until one completes.
				horizon := c.net.Now() + 1e7
				if !c.net.RunUntilEvent(horizon) {
					return sr, fmt.Errorf("flows stalled beyond horizon")
				}
			} else {
				c.net.RunUntilEvent(bound)
			}
		} else {
			c.net.RunUntil(bound)
		}
		now := c.net.Now()

		// Fire due samples.
		if opts.Sampler != nil {
			for *nextSample <= now+1e-12 {
				opts.Sampler(*nextSample, c.nodeRates(), c.NodeTokens())
				*nextSample += opts.SampleInterval
			}
		}

		// Retire due computes.
		kept := computes[:0]
		for _, ev := range computes {
			if ev.at <= now+1e-9 {
				ev.task.End = ev.at
				freeList[ev.node] = append(freeList[ev.node], ev.slot)
				if c.slotFreedAt != nil {
					c.slotFreedAt[ev.node][ev.slot] = ev.at
				}
				remaining--
			} else {
				kept = append(kept, ev)
			}
		}
		computes = kept
	}

	sr.End = c.net.Now()
	for _, tt := range traces {
		sr.Tasks = append(sr.Tasks, *tt)
	}
	sr.Straggle = straggleRatio(sr.Tasks)
	return sr, nil
}

func (c *Cluster) nodeRates() []float64 {
	out := make([]float64, c.cfg.Nodes)
	for i := 0; i < c.cfg.Nodes; i++ {
		nic, _ := c.net.NIC(nodeName(i))
		out[i] = nic.CurrentRateGbps()
	}
	return out
}

// straggleRatio is slowest task duration / median task duration.
func straggleRatio(tasks []TaskTrace) float64 {
	if len(tasks) == 0 {
		return 0
	}
	durations := make([]float64, len(tasks))
	for i, t := range tasks {
		durations[i] = t.End - t.Start
	}
	sort.Float64s(durations)
	med := durations[len(durations)/2]
	if med <= 0 {
		return 0
	}
	return durations[len(durations)-1] / med
}
