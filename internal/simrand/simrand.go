// Package simrand provides deterministic pseudo-random number generation
// for the emulation and simulation substrates.
//
// Reproducibility is a first-class requirement of this repository: the
// paper this code reproduces is about reproducible experimentation, so
// every stochastic component must be replayable bit-for-bit from a seed.
// The standard library's math/rand is seedable but its stream-splitting
// story is weak; simrand provides named, independently seeded substreams
// so that adding a new consumer of randomness does not perturb existing
// ones.
//
// The core generator is xoshiro256**, seeded through splitmix64, the
// combination recommended by its authors. Both are implemented here from
// the public-domain reference algorithms.
package simrand

import (
	"math"
)

// splitmix64 advances a 64-bit state and returns the next output.
// It is used for seeding: it ensures that even nearly identical seeds
// (0, 1, 2, ...) produce uncorrelated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; derive one Source per goroutine via Substream.
//
// The zero value is not usable; construct with New or Substream.
type Source struct {
	s [4]uint64
	// spare holds a cached standard normal variate (Box-Muller
	// generates them in pairs).
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// A xoshiro state of all zeros is invalid (fixed point); splitmix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Substream derives an independent child stream identified by name.
// The derivation hashes the name with FNV-1a into the child seed, so
// the same (parent seed, name) pair always yields the same stream and
// different names yield decorrelated streams.
func (s *Source) Substream(name string) *Source {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	// Mix the parent's current state so that substreams taken at
	// different points of the parent differ, while substreams taken
	// from a freshly seeded parent are reproducible.
	return New(h ^ s.s[0] ^ rotl(s.s[3], 17))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask
	hi = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation, using the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// LogNormal returns a variate whose logarithm is Normal(mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exponential called with rate <= 0")
	}
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-s.Float64()) / rate
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// Heavy-tailed variates model the long-tailed bandwidth distributions
// observed in the paper's Figure 5 (GCE 5-30 regime).
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("simrand: Pareto requires xm > 0 and alpha > 0")
	}
	return xm / math.Pow(1-s.Float64(), 1/alpha)
}

// Gamma returns a gamma variate with the given shape and scale
// (mean shape*scale), using the Marsaglia-Tsang squeeze method built
// on Normal and Float64. Gamma-distributed inter-arrival gaps model
// bursty request streams whose coefficient of variation exceeds the
// Poisson CV of 1.
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("simrand: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := 1 - s.Float64() // (0, 1], keeps Pow away from 0^inf
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := 1 - s.Float64() // (0, 1], Log never sees zero
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull variate with the given shape k and scale
// lambda, by inverting the CDF. Shape < 1 gives heavy-tailed gaps,
// shape > 1 gives regular (machine-like) gaps.
func (s *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("simrand: Weibull requires shape > 0 and scale > 0")
	}
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return scale * math.Pow(-math.Log(1-s.Float64()), 1/shape)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a deterministic Fisher-Yates permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
