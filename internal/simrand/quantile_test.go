package simrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func mustDist(t *testing.T) *QuantileDist {
	t.Helper()
	// A shape like a Ballani cloud: long lower tail.
	d, err := NewQuantileDist(
		[]float64{0.01, 0.25, 0.50, 0.75, 0.99},
		[]float64{100, 400, 600, 700, 900},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQuantileDistValidation(t *testing.T) {
	cases := []struct {
		name   string
		probs  []float64
		values []float64
	}{
		{"length mismatch", []float64{0.1, 0.9}, []float64{1}},
		{"too few knots", []float64{0.5}, []float64{1}},
		{"prob out of range", []float64{-0.1, 0.9}, []float64{1, 2}},
		{"prob above one", []float64{0.1, 1.5}, []float64{1, 2}},
		{"non-increasing probs", []float64{0.5, 0.5}, []float64{1, 2}},
		{"decreasing values", []float64{0.1, 0.9}, []float64{2, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewQuantileDist(c.probs, c.values); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestQuantileInterpolation(t *testing.T) {
	d := mustDist(t)
	cases := []struct {
		p, want float64
	}{
		{0.01, 100},
		{0.25, 400},
		{0.50, 600},
		{0.75, 700},
		{0.99, 900},
		{0.375, 500}, // midway between 0.25 and 0.50 knots
		{0.0, 100},   // clamped below
		{1.0, 900},   // clamped above
	}
	for _, c := range cases {
		if got := d.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	d := mustDist(t)
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return d.Quantile(pa) <= d.Quantile(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d := mustDist(t)
	src := New(17)
	for i := 0; i < 10000; i++ {
		v := d.Sample(src)
		if v < d.Min() || v > d.Max() {
			t.Fatalf("sample %g outside [%g, %g]", v, d.Min(), d.Max())
		}
	}
}

func TestSampleMedianConverges(t *testing.T) {
	d := mustDist(t)
	src := New(19)
	const n = 50001
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(src)
	}
	sort.Float64s(samples)
	med := samples[n/2]
	if math.Abs(med-d.Median()) > 15 { // ~2.5% of the 600 median
		t.Errorf("sample median %g far from distribution median %g", med, d.Median())
	}
}

func TestKnotsReturnsCopies(t *testing.T) {
	d := mustDist(t)
	p1, v1 := d.Knots()
	p1[0] = 0.999
	v1[0] = -1
	p2, v2 := d.Knots()
	if p2[0] == 0.999 || v2[0] == -1 {
		t.Error("Knots exposed internal state")
	}
}

func TestQuantileNaN(t *testing.T) {
	d := mustDist(t)
	if !math.IsNaN(d.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
}

func TestMustQuantileDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuantileDist did not panic on invalid input")
		}
	}()
	MustQuantileDist([]float64{0.5}, []float64{1})
}
