package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestNearbySeedsDecorrelated(t *testing.T) {
	// splitmix64 seeding should decorrelate even adjacent seeds.
	a := New(0)
	b := New(1)
	matches := 0
	for i := 0; i < 10000; i++ {
		if a.Uint64()>>63 == b.Uint64()>>63 {
			matches++
		}
	}
	// Expect ~5000 sign agreements; flag gross correlation only.
	if matches < 4500 || matches > 5500 {
		t.Errorf("adjacent seeds correlated: %d/10000 top-bit agreements", matches)
	}
}

func TestSubstreamReproducible(t *testing.T) {
	s1 := New(7).Substream("bandwidth")
	s2 := New(7).Substream("bandwidth")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same-name substreams diverged")
		}
	}
	s3 := New(7).Substream("bandwidth")
	s4 := New(7).Substream("latency")
	diff := false
	for i := 0; i < 10; i++ {
		if s3.Uint64() != s4.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different-name substreams produced identical output")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			s.Uint64()
		}
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	f := func(raw int16) bool {
		n := int(raw)
		if n <= 0 {
			n = 1 - n // make positive
		}
		if n == 0 {
			n = 1
		}
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)*0.05 {
			t.Errorf("bucket %d count %d deviates >5%% from %d", b, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %f, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(31)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(2)
		if v < 0 {
			t.Fatalf("negative exponential variate %f", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential(rate=2) mean = %f, want ~0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestParetoSupport(t *testing.T) {
	s := New(41)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 3); v < 2 {
			t.Fatalf("Pareto(2,3) produced %f < xm", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(43)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %f", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(51)
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(53)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := New(61)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %f", frac)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(71)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) produced %f", v)
		}
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}
