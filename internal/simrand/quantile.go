package simrand

import (
	"fmt"
	"math"
	"sort"
)

// QuantileDist is an empirical distribution specified by a set of
// (probability, value) knots, sampled by inverse-transform with linear
// interpolation between knots.
//
// This is exactly the information the paper has about the Ballani et al.
// clouds A-H (Figure 2): the 1st, 25th, 50th, 75th and 99th bandwidth
// percentiles. Section 2.1 notes that with only quartiles available and
// no autocovariance data, uniform sampling from the implied distribution
// is the defensible choice; QuantileDist encodes that choice.
type QuantileDist struct {
	probs  []float64
	values []float64
}

// NewQuantileDist builds a distribution from parallel slices of
// cumulative probabilities and values. Probabilities must be strictly
// increasing within [0, 1]; values must be non-decreasing.
func NewQuantileDist(probs, values []float64) (*QuantileDist, error) {
	if len(probs) != len(values) {
		return nil, fmt.Errorf("simrand: %d probs but %d values", len(probs), len(values))
	}
	if len(probs) < 2 {
		return nil, fmt.Errorf("simrand: need at least 2 knots, got %d", len(probs))
	}
	for i, p := range probs {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("simrand: prob %g out of [0,1]", p)
		}
		if i > 0 {
			if p <= probs[i-1] {
				return nil, fmt.Errorf("simrand: probs not strictly increasing at index %d", i)
			}
			if values[i] < values[i-1] {
				return nil, fmt.Errorf("simrand: values decrease at index %d", i)
			}
		}
	}
	d := &QuantileDist{
		probs:  append([]float64(nil), probs...),
		values: append([]float64(nil), values...),
	}
	return d, nil
}

// MustQuantileDist is NewQuantileDist that panics on error; intended for
// package-level catalog literals whose validity is fixed at compile time.
func MustQuantileDist(probs, values []float64) *QuantileDist {
	d, err := NewQuantileDist(probs, values)
	if err != nil {
		panic(err)
	}
	return d
}

// Quantile returns the value at cumulative probability p in [0, 1],
// linearly interpolated between knots and clamped to the outer knots.
func (d *QuantileDist) Quantile(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= d.probs[0] {
		return d.values[0]
	}
	n := len(d.probs)
	if p >= d.probs[n-1] {
		return d.values[n-1]
	}
	// Find the first knot with prob >= p.
	i := sort.SearchFloat64s(d.probs, p)
	lo, hi := i-1, i
	span := d.probs[hi] - d.probs[lo]
	frac := (p - d.probs[lo]) / span
	return d.values[lo] + frac*(d.values[hi]-d.values[lo])
}

// Sample draws a variate via inverse-transform sampling.
func (d *QuantileDist) Sample(src *Source) float64 {
	return d.Quantile(src.Float64())
}

// Median returns the 50th percentile.
func (d *QuantileDist) Median() float64 { return d.Quantile(0.5) }

// Min and Max return the outermost knot values (the distribution's
// support as far as it is known).
func (d *QuantileDist) Min() float64 { return d.values[0] }

// Max returns the largest knot value.
func (d *QuantileDist) Max() float64 { return d.values[len(d.values)-1] }

// Knots returns copies of the knot slices, useful for reporting.
func (d *QuantileDist) Knots() (probs, values []float64) {
	return append([]float64(nil), d.probs...), append([]float64(nil), d.values...)
}
