package core

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Report assembles everything the paper says a published cloud
// experiment must disclose (F2.2, F5.2, F5.5): the platform
// fingerprint, full statistical distributions rather than bare
// averages, repetition counts, validation findings, and the platform
// metadata needed to detect when a provider policy change invalidates
// future comparisons. WriteMarkdown renders it as a report section
// ready to paste into a paper's artifact appendix.
type Report struct {
	// Title identifies the experiment.
	Title string
	// Generated is the report creation time (caller-supplied so
	// reports are reproducible in tests).
	Generated time.Time
	// Fingerprint is the platform baseline measured alongside the
	// experiment.
	Fingerprint *Fingerprint
	// Results holds per-experiment outcomes.
	Results []Result
	// Metadata records platform details: provider, region, instance
	// type, dates — the F5.5 disclosure list.
	Metadata map[string]string
}

// NewReport builds a report from experiment results.
func NewReport(title string, generated time.Time, results ...Result) *Report {
	return &Report{
		Title:     title,
		Generated: generated,
		Results:   results,
		Metadata:  map[string]string{},
	}
}

// WriteMarkdown renders the report.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# %s\n\ngenerated: %s\n\n", r.Title, r.Generated.Format(time.RFC3339)); err != nil {
		return err
	}

	if len(r.Metadata) > 0 {
		if err := p("## Platform\n\n"); err != nil {
			return err
		}
		keys := make([]string, 0, len(r.Metadata))
		for k := range r.Metadata {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := p("- %s: %s\n", k, r.Metadata[k]); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}

	if r.Fingerprint != nil {
		if err := p("## Network fingerprint (verify before comparing to these numbers)\n\n%s\n\n",
			r.Fingerprint.String()); err != nil {
			return err
		}
	}

	for _, res := range r.Results {
		if err := p("## %s\n\n", res.Name); err != nil {
			return err
		}
		s := res.Summary
		if err := p("- repetitions: %d (converged: %v)\n", s.N, res.Converged); err != nil {
			return err
		}
		if err := p("- median: %.4g s; mean: %.4g; CoV: %.1f%%\n", s.Median, s.Mean, s.CoV*100); err != nil {
			return err
		}
		if err := p("- distribution: min %.4g / p25 %.4g / p75 %.4g / p99 %.4g / max %.4g\n",
			s.Min, s.P25, s.P75, s.P99, s.Max); err != nil {
			return err
		}
		if res.MedianCIErr == nil {
			if err := p("- 95%% median CI: [%.4g, %.4g] (rel. err %.2f%%)\n",
				res.MedianCI.Lo, res.MedianCI.Hi, res.MedianCI.RelativeError()*100); err != nil {
				return err
			}
		} else {
			if err := p("- 95%% median CI: UNAVAILABLE (%v) — increase repetitions\n", res.MedianCIErr); err != nil {
				return err
			}
		}
		if req := res.Planning.RequiredRepetitions(); req > res.Summary.N {
			if err := p("- CONFIRM: ~%d repetitions needed for the %.0f%% error bound\n",
				req, res.Planning.ErrorBound*100); err != nil {
				return err
			}
		}
		findings := res.Validation.Findings()
		if len(findings) == 0 {
			if err := p("- validation: no red flags\n"); err != nil {
				return err
			}
		}
		for _, msg := range findings {
			if err := p("- WARNING: %s\n", msg); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	return nil
}
