// Package core is the paper's contribution distilled into a library:
// variability-aware experiment design for cloud environments. It
// operationalises the Section 5 findings:
//
//   - F5.2: fingerprint the platform's network behaviour before and
//     after an experiment, and only compare results whose baselines
//     match (Fingerprint, Matches).
//   - F5.3: treat stochastic variability with enough repetitions and
//     nonparametric statistics; plan repetitions with CONFIRM
//     (Design.Adaptive, Result.Planning).
//   - F5.4: test samples for normality, independence and
//     stationarity; rest and reset infrastructure so runs are truly
//     independent; randomise experiment order (Validate, Design.RestSec,
//     Design.FreshEnv, Suite).
//   - F5.5: record platform details alongside results (Metadata).
package core

import (
	"fmt"
	"math"

	"cloudvar/internal/confirm"
	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
)

// Trial runs one experiment repetition and returns its measurement
// (e.g. a runtime in seconds).
type Trial func() (float64, error)

// Environment abstracts the controllable infrastructure hooks the
// methodology needs. Implementations range from the emulated clusters
// in this repository to real cloud orchestration.
type Environment interface {
	// Reset restores the environment to a known clean state — the
	// "fresh set of VMs for every experiment" protocol. For the
	// emulated clusters this rebuilds token buckets at their initial
	// budget.
	Reset() error
	// Rest idles the environment for the given seconds, letting
	// hidden state (token buckets) recover without a full reset.
	Rest(seconds float64) error
}

// NopEnvironment is an Environment with no controllable state, for
// experiments that manage their own.
type NopEnvironment struct{}

// Reset implements Environment.
func (NopEnvironment) Reset() error { return nil }

// Rest implements Environment.
func (NopEnvironment) Rest(float64) error { return nil }

// Design specifies how an experiment is to be run.
type Design struct {
	// Repetitions is the fixed repetition count; ignored when
	// Adaptive is set.
	Repetitions int
	// Adaptive keeps repeating until the median CI fits ErrorBound
	// or MaxRepetitions is reached (CONFIRM-style planning).
	Adaptive bool
	// MaxRepetitions bounds adaptive runs.
	MaxRepetitions int
	// Confidence for interval estimates (default 0.95).
	Confidence float64
	// ErrorBound is the target relative CI half-width (default 0.05).
	ErrorBound float64
	// RestSec idles the environment between repetitions.
	RestSec float64
	// FreshEnv resets the environment before every repetition.
	FreshEnv bool
}

// DefaultDesign returns the paper-recommended fixed design: enough
// repetitions for a valid 95% median CI, with rests between runs.
func DefaultDesign(repetitions int) Design {
	return Design{
		Repetitions: repetitions,
		Confidence:  0.95,
		ErrorBound:  0.05,
	}
}

// withDefaults fills zero fields.
func (d Design) withDefaults() Design {
	if d.Confidence == 0 {
		d.Confidence = 0.95
	}
	if d.ErrorBound == 0 {
		d.ErrorBound = 0.05
	}
	if d.Adaptive && d.MaxRepetitions == 0 {
		d.MaxRepetitions = 100
	}
	return d
}

// Validate checks the design.
func (d Design) Validate() error {
	d = d.withDefaults()
	switch {
	case !d.Adaptive && d.Repetitions < 2:
		return fmt.Errorf("core: fixed design needs >= 2 repetitions")
	case d.Adaptive && d.MaxRepetitions < stats.MinSamplesForQuantileCI(0.5, d.Confidence):
		return fmt.Errorf("core: adaptive cap %d below the minimum for a %g%% median CI",
			d.MaxRepetitions, d.Confidence*100)
	case d.Confidence <= 0 || d.Confidence >= 1:
		return fmt.Errorf("core: confidence %g outside (0,1)", d.Confidence)
	case d.ErrorBound <= 0:
		return fmt.Errorf("core: error bound must be positive")
	case d.RestSec < 0:
		return fmt.Errorf("core: negative rest")
	}
	return nil
}

// Result is the outcome of running a designed experiment.
type Result struct {
	Name    string
	Samples []float64
	Summary stats.Summary
	// MedianCI is the nonparametric interval; Err is non-nil when the
	// sample was too small for one (the under-specification the
	// survey found in most papers).
	MedianCI    stats.Interval
	MedianCIErr error
	// Planning is the CONFIRM trace over the samples.
	Planning confirm.Analysis
	// Validation is the F5.4 statistical check battery.
	Validation ValidationReport
	// Converged reports whether the design's error bound was met.
	Converged bool
	// Metadata records platform details per F5.5.
	Metadata map[string]string
}

// BuildResult assembles a Result from already-collected samples: the
// descriptive summary, nonparametric median CI, CONFIRM planning trace
// and F5.4 validation battery. Zero confidence/errorBound take the
// paper defaults (0.95, 0.05). Run, RunSuite and the fleet
// orchestrator all funnel their samples through here so every path
// reports identically.
func BuildResult(name string, samples []float64, confidence, errorBound float64) Result {
	if confidence == 0 {
		confidence = 0.95
	}
	if errorBound == 0 {
		errorBound = 0.05
	}
	// One sort serves both the summary and the median CI.
	var sample stats.Sample
	sample.Reset(samples)
	res := Result{
		Name:     name,
		Samples:  samples,
		Summary:  sample.Summary(),
		Metadata: map[string]string{},
	}
	res.MedianCI, res.MedianCIErr = sample.MedianCI(confidence)
	if res.MedianCIErr == nil && res.MedianCI.RelativeError() <= errorBound {
		res.Converged = true
	}
	if len(samples) >= 2 {
		if an, err := confirm.Analyze(samples, confidence, errorBound); err == nil {
			res.Planning = an
		}
	}
	res.Validation = Validate(samples)
	return res
}

// Run executes the experiment per the design against the environment.
func Run(name string, design Design, env Environment, trial Trial) (Result, error) {
	design = design.withDefaults()
	if err := design.Validate(); err != nil {
		return Result{}, err
	}
	if env == nil {
		env = NopEnvironment{}
	}
	if trial == nil {
		return Result{}, fmt.Errorf("core: nil trial")
	}

	res := Result{Name: name, Metadata: map[string]string{}}
	limit := design.Repetitions
	if design.Adaptive {
		limit = design.MaxRepetitions
	}

	for i := 0; i < limit; i++ {
		if design.FreshEnv {
			if err := env.Reset(); err != nil {
				return res, fmt.Errorf("core: resetting environment before rep %d: %w", i, err)
			}
		}
		if design.RestSec > 0 && i > 0 {
			if err := env.Rest(design.RestSec); err != nil {
				return res, fmt.Errorf("core: resting before rep %d: %w", i, err)
			}
		}
		v, err := trial()
		if err != nil {
			return res, fmt.Errorf("core: repetition %d: %w", i, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return res, fmt.Errorf("core: repetition %d produced non-finite measurement %g", i, v)
		}
		res.Samples = append(res.Samples, v)

		if design.Adaptive && len(res.Samples) >= stats.MinSamplesForQuantileCI(0.5, design.Confidence) {
			iv, err := stats.MedianCI(res.Samples, design.Confidence)
			if err == nil && iv.RelativeError() <= design.ErrorBound {
				res.Converged = true
				break
			}
		}
	}

	built := BuildResult(name, res.Samples, design.Confidence, design.ErrorBound)
	built.Converged = built.Converged || res.Converged
	return built, nil
}

// SuiteItem names one experiment in a randomised suite.
type SuiteItem struct {
	Name  string
	Trial Trial
}

// RunSuite executes several experiments with their repetitions
// interleaved in randomised order — the F5.4 defence against
// self-interference, where experiment k's traffic perturbs experiment
// k+1 through hidden token-bucket state.
func RunSuite(items []SuiteItem, design Design, env Environment, src *simrand.Source) (map[string]Result, error) {
	design = design.withDefaults()
	if design.Adaptive {
		return nil, fmt.Errorf("core: randomised suites need a fixed design")
	}
	if err := design.Validate(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("core: empty suite")
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	if env == nil {
		env = NopEnvironment{}
	}

	// Build the randomised schedule: every (item, repetition) pair,
	// shuffled.
	type slot struct{ item int }
	var schedule []slot
	for i := range items {
		if items[i].Trial == nil {
			return nil, fmt.Errorf("core: suite item %q has nil trial", items[i].Name)
		}
		for r := 0; r < design.Repetitions; r++ {
			schedule = append(schedule, slot{item: i})
		}
	}
	src.Shuffle(len(schedule), func(a, b int) {
		schedule[a], schedule[b] = schedule[b], schedule[a]
	})

	samples := make(map[string][]float64, len(items))
	for k, s := range schedule {
		if design.FreshEnv {
			if err := env.Reset(); err != nil {
				return nil, fmt.Errorf("core: suite reset at slot %d: %w", k, err)
			}
		}
		if design.RestSec > 0 && k > 0 {
			if err := env.Rest(design.RestSec); err != nil {
				return nil, fmt.Errorf("core: suite rest at slot %d: %w", k, err)
			}
		}
		name := items[s.item].Name
		v, err := items[s.item].Trial()
		if err != nil {
			return nil, fmt.Errorf("core: suite %q slot %d: %w", name, k, err)
		}
		samples[name] = append(samples[name], v)
	}

	out := make(map[string]Result, len(items))
	for _, it := range items {
		out[it.Name] = BuildResult(it.Name, samples[it.Name], design.Confidence, design.ErrorBound)
	}
	return out, nil
}
