package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/tokenbucket"
)

// noisyTrial returns a Trial producing Normal(mean, sd) measurements.
func noisyTrial(seed uint64, mean, sd float64) Trial {
	src := simrand.New(seed)
	return func() (float64, error) { return src.Normal(mean, sd), nil }
}

func TestDesignValidation(t *testing.T) {
	bad := []Design{
		{Repetitions: 1},
		{Adaptive: true, MaxRepetitions: 3},
		{Repetitions: 10, Confidence: 1.5},
		{Repetitions: 10, ErrorBound: -1},
		{Repetitions: 10, RestSec: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("design %d should fail", i)
		}
	}
	if err := DefaultDesign(10).Validate(); err != nil {
		t.Errorf("default design invalid: %v", err)
	}
}

func TestRunFixedDesign(t *testing.T) {
	res, err := Run("fixed", DefaultDesign(30), nil, noisyTrial(1, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 30 {
		t.Fatalf("got %d samples", len(res.Samples))
	}
	if res.MedianCIErr != nil {
		t.Fatalf("median CI failed: %v", res.MedianCIErr)
	}
	if !res.MedianCI.Contains(res.Summary.Median) {
		t.Error("CI excludes its own median")
	}
	if res.Summary.N != 30 {
		t.Error("summary not computed")
	}
}

func TestRunAdaptiveStopsEarly(t *testing.T) {
	// Tiny variance: should converge long before the cap.
	res, err := Run("adaptive", Design{
		Adaptive: true, MaxRepetitions: 100, ErrorBound: 0.05,
	}, nil, noisyTrial(2, 100, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("low-variance adaptive run did not converge")
	}
	if len(res.Samples) >= 100 {
		t.Errorf("adaptive run used all %d repetitions", len(res.Samples))
	}
}

func TestRunAdaptiveHitsCapOnNoisyData(t *testing.T) {
	res, err := Run("noisy", Design{
		Adaptive: true, MaxRepetitions: 20, ErrorBound: 0.001,
	}, nil, noisyTrial(3, 100, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("0.1% bound on 30% CoV data should not converge in 20 reps")
	}
	if len(res.Samples) != 20 {
		t.Errorf("expected cap of 20, got %d", len(res.Samples))
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run("err", DefaultDesign(5), nil, func() (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("trial error not propagated: %v", err)
	}
	_, err = Run("nan", DefaultDesign(5), nil, func() (float64, error) { return math.NaN(), nil })
	if err == nil {
		t.Error("NaN measurement should error")
	}
	if _, err := Run("nil", DefaultDesign(5), nil, nil); err == nil {
		t.Error("nil trial should error")
	}
}

// trackingEnv counts Reset and Rest calls.
type trackingEnv struct {
	resets int
	rests  int
	fail   bool
}

func (e *trackingEnv) Reset() error {
	if e.fail {
		return errors.New("reset failed")
	}
	e.resets++
	return nil
}
func (e *trackingEnv) Rest(float64) error { e.rests++; return nil }

func TestEnvironmentHooks(t *testing.T) {
	env := &trackingEnv{}
	_, err := Run("hooks", Design{
		Repetitions: 5, RestSec: 1, FreshEnv: true,
	}, env, noisyTrial(4, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if env.resets != 5 {
		t.Errorf("resets = %d, want 5", env.resets)
	}
	if env.rests != 4 { // no rest before the first repetition
		t.Errorf("rests = %d, want 4", env.rests)
	}

	env = &trackingEnv{fail: true}
	if _, err := Run("hookfail", Design{Repetitions: 3, FreshEnv: true}, env, noisyTrial(5, 10, 1)); err == nil {
		t.Error("reset failure should propagate")
	}
}

func TestRunSuiteRandomizedBalanced(t *testing.T) {
	src := simrand.New(6)
	counts := map[string]int{}
	items := []SuiteItem{
		{Name: "a", Trial: func() (float64, error) { counts["a"]++; return 1, nil }},
		{Name: "b", Trial: func() (float64, error) { counts["b"]++; return 2, nil }},
	}
	results, err := RunSuite(items, Design{Repetitions: 10}, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 10 || counts["b"] != 10 {
		t.Errorf("unbalanced suite: %v", counts)
	}
	if len(results) != 2 {
		t.Fatalf("results for %d items", len(results))
	}
	for name, r := range results {
		if len(r.Samples) != 10 {
			t.Errorf("%s: %d samples", name, len(r.Samples))
		}
	}
}

func TestRunSuiteValidation(t *testing.T) {
	src := simrand.New(7)
	ok := []SuiteItem{{Name: "a", Trial: noisyTrial(8, 1, 0.1)}}
	if _, err := RunSuite(nil, Design{Repetitions: 3}, nil, src); err == nil {
		t.Error("empty suite should error")
	}
	if _, err := RunSuite(ok, Design{Adaptive: true, MaxRepetitions: 50}, nil, src); err == nil {
		t.Error("adaptive suite should error")
	}
	if _, err := RunSuite(ok, Design{Repetitions: 3}, nil, nil); err == nil {
		t.Error("nil source should error")
	}
	if _, err := RunSuite([]SuiteItem{{Name: "x"}}, Design{Repetitions: 3}, nil, src); err == nil {
		t.Error("nil trial should error")
	}
}

func TestValidateIIDPath(t *testing.T) {
	src := simrand.New(9)
	iid := make([]float64, 80)
	for i := range iid {
		iid[i] = src.Normal(50, 2)
	}
	rep := Validate(iid)
	if !rep.IID() {
		t.Errorf("iid data failed IID check: %+v", rep.Findings())
	}

	drifting := make([]float64, 80)
	for i := range drifting {
		drifting[i] = 50 + float64(i) + src.Normal(0, 1)
	}
	rep = Validate(drifting)
	if rep.IID() {
		t.Error("drifting data passed IID check")
	}
	findings := rep.Findings()
	if len(findings) == 0 {
		t.Fatal("drifting data produced no findings")
	}
	joined := strings.Join(findings, "\n")
	if !strings.Contains(joined, "not independent") && !strings.Contains(joined, "non-stationary") {
		t.Errorf("findings lack iid/stationarity diagnosis: %v", findings)
	}
}

func TestValidateShortSample(t *testing.T) {
	rep := Validate([]float64{1, 2})
	if rep.IID() {
		t.Error("unverifiable assumptions must not pass (the paper's point)")
	}
	if len(rep.Findings()) == 0 {
		t.Error("short sample should produce findings")
	}
}

func TestCompareMedians(t *testing.T) {
	fast, err := Run("fast", DefaultDesign(30), nil, noisyTrial(10, 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run("slow", DefaultDesign(30), nil, noisyTrial(11, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	same, err := Run("same", DefaultDesign(30), nil, noisyTrial(12, 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompareMedians(fast, slow)
	if err != nil || !d {
		t.Errorf("50 vs 100 not distinguishable: %v %v", d, err)
	}
	d, err = CompareMedians(fast, same)
	if err != nil {
		t.Fatal(err)
	}
	if d {
		t.Error("identical distributions distinguishable")
	}
	bad := Result{Name: "bad", MedianCIErr: errors.New("no CI")}
	if _, err := CompareMedians(bad, fast); err == nil {
		t.Error("missing CI should error")
	}
}

func TestFingerprintDetectsTokenBucket(t *testing.T) {
	src := simrand.New(13)
	newBucketed := func() netem.Shaper {
		sh, err := netem.NewBucketShaper(tokenbucket.Params{
			BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	fp, err := FingerprintShaper(newBucketed, netem.EC2VNIC(), FingerprintConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bucket == nil {
		t.Fatal("token bucket not detected")
	}
	if math.Abs(fp.Bucket.HighGbps-10) > 1 || math.Abs(fp.Bucket.LowGbps-1) > 0.3 {
		t.Errorf("bucket rates: %+v", fp.Bucket)
	}
	if math.Abs(fp.BaseBandwidthGbps-10) > 1 {
		t.Errorf("base bandwidth %g, want ~10", fp.BaseBandwidthGbps)
	}
	if fp.BaseRTTms <= 0 || fp.LoadedRTTms <= 0 {
		t.Error("latency fields not populated")
	}
	if !strings.Contains(fp.String(), "token bucket") {
		t.Errorf("String() = %q", fp.String())
	}
}

func TestFingerprintNoBucketOnFixedShaper(t *testing.T) {
	src := simrand.New(14)
	newFixed := func() netem.Shaper { return &netem.FixedShaper{RateGbps: 8} }
	fp, err := FingerprintShaper(newFixed, netem.GCEVNIC(), FingerprintConfig{ThrottleProbeSec: 300}, src)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bucket != nil {
		t.Errorf("phantom bucket detected: %+v", fp.Bucket)
	}
	if !strings.Contains(fp.String(), "no deterministic throttling") {
		t.Errorf("String() = %q", fp.String())
	}
}

func TestFingerprintMatches(t *testing.T) {
	src := simrand.New(15)
	newShaper := func() netem.Shaper {
		sh, err := netem.NewBucketShaper(tokenbucket.Params{
			BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	a, err := FingerprintShaper(newShaper, netem.EC2VNIC(), FingerprintConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FingerprintShaper(newShaper, netem.EC2VNIC(), FingerprintConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Matches(b, 0.15) {
		t.Errorf("same platform fingerprints do not match:\n%v\n%v", a, b)
	}
	// A 5 Gbps incarnation (the August 2019 change) must NOT match.
	newCapped := func() netem.Shaper {
		sh, err := netem.NewBucketShaper(tokenbucket.Params{
			BudgetGbit: 5400, RefillGbps: 1, HighGbps: 5, LowGbps: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	c, err := FingerprintShaper(newCapped, netem.EC2VNIC(), FingerprintConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Matches(c, 0.15) {
		t.Error("10 Gbps and 5 Gbps platforms should not match")
	}
}

func TestFingerprintErrors(t *testing.T) {
	src := simrand.New(16)
	if _, err := FingerprintShaper(nil, netem.EC2VNIC(), FingerprintConfig{}, src); err == nil {
		t.Error("nil factory should error")
	}
	ok := func() netem.Shaper { return &netem.FixedShaper{RateGbps: 1} }
	if _, err := FingerprintShaper(ok, netem.EC2VNIC(), FingerprintConfig{}, nil); err == nil {
		t.Error("nil source should error")
	}
}

func TestResultPlanningPopulated(t *testing.T) {
	res, err := Run("plan", DefaultDesign(40), nil, noisyTrial(17, 100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Planning.Points) == 0 {
		t.Fatal("CONFIRM planning missing")
	}
	req := res.Planning.RequiredRepetitions()
	if req == 0 {
		t.Error("required repetitions unset")
	}
	t.Log(fmt.Sprintf("planning suggests %d repetitions", req))
}
