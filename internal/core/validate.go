package core

import (
	"fmt"

	"cloudvar/internal/stats"
)

// ValidationReport is the F5.4 statistical check battery applied to a
// measurement sequence: "samples collected should be tested for
// normality, independence, and stationarity".
type ValidationReport struct {
	N int
	// Normality is the Shapiro-Wilk result; when it rejects,
	// nonparametric statistics (the median CIs used throughout) are
	// required rather than mean ± stddev.
	Normality    stats.TestResult
	NormalityErr error
	// Independence is Mann-Whitney between the first and second half
	// of the sequence; rejection means later runs differ
	// systematically from earlier ones.
	Independence    stats.TestResult
	IndependenceErr error
	// Stationarity is the augmented Dickey-Fuller unit-root test.
	Stationarity    stats.ADFResult
	StationarityErr error
	// Lag1Autocorrelation of the sequence; large positive values
	// indicate carry-over between consecutive repetitions.
	Lag1Autocorrelation float64
}

// Validate runs every applicable check on the samples, in arrival
// order. Checks that need more data than provided record their errors
// rather than failing the whole report.
func Validate(samples []float64) ValidationReport {
	rep := ValidationReport{N: len(samples)}
	rep.Normality, rep.NormalityErr = stats.ShapiroWilk(samples)
	rep.Independence, rep.IndependenceErr = stats.IndependenceCheck(samples)
	rep.Stationarity, rep.StationarityErr = stats.ADF(samples, 1)
	rep.Lag1Autocorrelation = stats.Autocorrelation(samples, 1)
	return rep
}

// IID reports whether the sequence looks independent and identically
// distributed enough for classical analysis: the independence check
// passes and stationarity holds (or could not be assessed for lack of
// data, in which case the benefit of the doubt is NOT given — the
// paper's position is that unverified assumptions are the problem).
func (r ValidationReport) IID() bool {
	if r.IndependenceErr != nil || r.StationarityErr != nil {
		return false
	}
	return !r.Independence.RejectAt05 && r.Stationarity.Stationary
}

// Findings renders the report as actionable recommendations, echoing
// Section 5's guidance. An empty slice means no red flags.
func (r ValidationReport) Findings() []string {
	var out []string
	if r.NormalityErr == nil && r.Normality.RejectAt05 {
		out = append(out,
			"samples are not normally distributed: report medians with nonparametric CIs, not mean±stddev (F5.3)")
	}
	if r.IndependenceErr != nil {
		out = append(out, fmt.Sprintf(
			"too few samples to test independence (%v): run more repetitions (F5.3)", r.IndependenceErr))
	} else if r.Independence.RejectAt05 {
		out = append(out,
			"first and second half of the sequence differ: repetitions are not independent — reset or rest the infrastructure between runs (F5.4, Figure 19)")
	}
	if r.StationarityErr == nil && !r.Stationarity.Stationary {
		out = append(out,
			"sequence is non-stationary: limit analysis to stationary windows or spread repetitions over longer time frames (F5.4)")
	}
	if r.Lag1Autocorrelation > 0.5 {
		out = append(out, fmt.Sprintf(
			"strong lag-1 autocorrelation (%.2f): consecutive runs share hidden state such as token-bucket budgets (F4.4)",
			r.Lag1Autocorrelation))
	}
	return out
}

// CompareMedians reports whether two experiments' medians are
// distinguishable at their CI confidence: if the intervals overlap,
// the honest conclusion is "no detectable difference", not a
// percentage improvement — the survey's headline failure mode.
func CompareMedians(a, b Result) (distinguishable bool, err error) {
	if a.MedianCIErr != nil {
		return false, fmt.Errorf("core: %s has no valid CI: %w", a.Name, a.MedianCIErr)
	}
	if b.MedianCIErr != nil {
		return false, fmt.Errorf("core: %s has no valid CI: %w", b.Name, b.MedianCIErr)
	}
	return a.MedianCI.Lo > b.MedianCI.Hi || b.MedianCI.Lo > a.MedianCI.Hi, nil
}
