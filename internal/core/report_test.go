package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cloudvar/internal/tokenbucket"
)

func TestReportMarkdown(t *testing.T) {
	good, err := Run("baseline", DefaultDesign(30), nil, noisyTrial(1, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run("under-specified", DefaultDesign(3), nil, noisyTrial(2, 100, 3))
	if err != nil {
		t.Fatal(err)
	}

	rep := NewReport("demo experiment", time.Unix(0, 0).UTC(), good, short)
	rep.Metadata["provider"] = "emulated-ec2"
	rep.Metadata["instance"] = "c5.xlarge"
	rep.Fingerprint = &Fingerprint{
		BaseRTTms: 0.2, BaseBandwidthGbps: 10, LoadedRTTms: 0.3,
		Bucket: &tokenbucket.Inferred{
			HighGbps: 10, LowGbps: 1, BudgetGbit: 5400, TimeToEmptySec: 600, RefillGbps: 1,
		},
	}

	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# demo experiment",
		"## Platform",
		"- provider: emulated-ec2",
		"## Network fingerprint",
		"token bucket: high 10.0 Gbps",
		"## baseline",
		"95% median CI: [",
		"## under-specified",
		"UNAVAILABLE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Metadata keys render sorted: instance before provider.
	if strings.Index(out, "- instance:") > strings.Index(out, "- provider:") {
		t.Error("metadata not sorted")
	}
}

func TestReportWithoutOptionalSections(t *testing.T) {
	res, err := Run("x", DefaultDesign(10), nil, noisyTrial(3, 5, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("minimal", time.Unix(0, 0).UTC(), res)
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "## Platform") {
		t.Error("empty metadata should be omitted")
	}
	if strings.Contains(out, "## Network fingerprint") {
		t.Error("nil fingerprint should be omitted")
	}
}
