package core

import (
	"fmt"
	"math"
	"strings"

	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
	"cloudvar/internal/tokenbucket"
)

// Fingerprint is the network baseline the paper says should accompany
// every published cloud experiment (F5.2): base latency, base
// bandwidth, latency under load, and token-bucket parameters when a
// deterministic QoS shaper is detected. "When reporting experiments,
// always include these performance fingerprints together with the
// actual data."
type Fingerprint struct {
	// BaseRTTms is the unloaded round-trip latency.
	BaseRTTms float64
	// BaseBandwidthGbps is the short-probe bandwidth (before any
	// token bucket can engage).
	BaseBandwidthGbps float64
	// LoadedRTTms is the round-trip latency while a bulk transfer
	// saturates the path.
	LoadedRTTms float64
	// Bucket holds inferred token-bucket parameters; nil when no
	// throttling was detected (stochastic-only clouds).
	Bucket *tokenbucket.Inferred
}

// FingerprintConfig tunes the micro-benchmarks.
type FingerprintConfig struct {
	// ShortProbeSec is the bandwidth probe length; keep it well under
	// the expected time-to-empty so the probe itself does not
	// throttle the path (default 5 s).
	ShortProbeSec float64
	// ThrottleProbeSec is the long probe used for token-bucket
	// detection (default 1800 s — enough to empty a c5.xlarge).
	ThrottleProbeSec float64
	// WriteBytes is the probe's socket write size (default 128 KiB).
	WriteBytes int
}

func (c FingerprintConfig) withDefaults() FingerprintConfig {
	if c.ShortProbeSec == 0 {
		c.ShortProbeSec = 5
	}
	if c.ThrottleProbeSec == 0 {
		c.ThrottleProbeSec = 1800
	}
	if c.WriteBytes == 0 {
		c.WriteBytes = 131072
	}
	return c
}

// FingerprintShaper micro-benchmarks an emulated network path: a
// fresh shaper is probed for base bandwidth and latency, then driven
// to exhaustion to detect and parameterise a token bucket. The same
// protocol applies to a real cloud path with real tools; here it runs
// against the emulator so fingerprints are reproducible in tests.
func FingerprintShaper(newShaper func() netem.Shaper, vnic netem.VNICModel, cfg FingerprintConfig, src *simrand.Source) (Fingerprint, error) {
	cfg = cfg.withDefaults()
	if newShaper == nil {
		return Fingerprint{}, fmt.Errorf("core: nil shaper factory")
	}
	if src == nil {
		return Fingerprint{}, fmt.Errorf("core: nil random source")
	}

	var fp Fingerprint

	// 1) Short bandwidth probe on a fresh shaper.
	short, err := netem.RunIperf(newShaper(), vnic, netem.IperfConfig{
		DurationSec: cfg.ShortProbeSec, WriteBytes: cfg.WriteBytes,
		BinSec: 1, RTTSamplesPerBin: 8,
	}, src)
	if err != nil {
		return fp, fmt.Errorf("core: short probe: %w", err)
	}
	fp.BaseBandwidthGbps = short.MeanBandwidthGbps()
	if len(short.RTTms) > 0 {
		fp.LoadedRTTms = stats.Median(short.RTTms)
	}

	// 2) Base latency: tiny unloaded writes at the probed line rate.
	fp.BaseRTTms = vnic.LatencyMs(64, math.Max(fp.BaseBandwidthGbps, 0.1), false)

	// 3) Throttle detection: long probe on another fresh shaper.
	long, err := netem.RunIperf(newShaper(), vnic, netem.IperfConfig{
		DurationSec: cfg.ThrottleProbeSec, WriteBytes: cfg.WriteBytes,
		BinSec: 10,
	}, src)
	if err != nil {
		return fp, fmt.Errorf("core: throttle probe: %w", err)
	}
	inf, err := tokenbucket.InferParams(long.BandwidthGbps, 10, 1)
	if err == nil {
		fp.Bucket = &inf
	}
	return fp, nil
}

// Matches reports whether two fingerprints describe the same platform
// behaviour within tolerance (a fraction, e.g. 0.15): the F5.5 guard
// — "only comparing results to future experiments when these
// baselines match".
func (f Fingerprint) Matches(other Fingerprint, tolerance float64) bool {
	within := func(a, b float64) bool {
		if a == 0 && b == 0 {
			return true
		}
		denominator := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b)/denominator <= tolerance
	}
	if !within(f.BaseBandwidthGbps, other.BaseBandwidthGbps) {
		return false
	}
	if !within(f.BaseRTTms, other.BaseRTTms) {
		return false
	}
	if (f.Bucket == nil) != (other.Bucket == nil) {
		return false
	}
	if f.Bucket != nil {
		if !within(f.Bucket.HighGbps, other.Bucket.HighGbps) ||
			!within(f.Bucket.LowGbps, other.Bucket.LowGbps) ||
			!within(f.Bucket.BudgetGbit, other.Bucket.BudgetGbit) {
			return false
		}
	}
	return true
}

// String renders the fingerprint the way it should appear in a
// published experiment report.
func (f Fingerprint) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "base RTT %.3f ms, base bandwidth %.2f Gbps, loaded RTT %.3f ms",
		f.BaseRTTms, f.BaseBandwidthGbps, f.LoadedRTTms)
	if f.Bucket != nil {
		fmt.Fprintf(&b, "; token bucket: high %.1f Gbps, low %.1f Gbps, budget %.0f Gbit, time-to-empty %.0f s",
			f.Bucket.HighGbps, f.Bucket.LowGbps, f.Bucket.BudgetGbit, f.Bucket.TimeToEmptySec)
	} else {
		b.WriteString("; no deterministic throttling detected")
	}
	return b.String()
}
