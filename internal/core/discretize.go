package core

import (
	"fmt"

	"cloudvar/internal/confirm"
	"cloudvar/internal/stats"
	"cloudvar/internal/trace"
)

// DiscretizedAnalysis applies the paper's F5.4 long-horizon recipe to
// a continuous measurement series: discretise into fixed windows,
// take each window's median, and run CONFIRM over the window medians.
// Window medians smooth out sub-window noise, so the analysis answers
// the question an experimenter actually has about a noisy platform:
// how many hours (windows) of measurement make the platform's median
// performance estimate trustworthy?
type DiscretizedAnalysis struct {
	WindowSec float64
	// Medians holds one median per window.
	Medians []float64
	// Confirm is the CONFIRM trace over the window medians.
	Confirm confirm.Analysis
	// Validation checks the window medians for iid violations
	// (diurnal cycles surface here as failed stationarity).
	Validation ValidationReport
}

// Discretize runs the analysis. conf and errBound parameterise the
// CONFIRM intervals (e.g. 0.95 and 0.05).
func Discretize(s *trace.Series, windowSec, conf, errBound float64) (DiscretizedAnalysis, error) {
	medians, err := trace.WindowMedians(s, windowSec)
	if err != nil {
		return DiscretizedAnalysis{}, fmt.Errorf("core: discretizing: %w", err)
	}
	out := DiscretizedAnalysis{WindowSec: windowSec, Medians: medians}
	if len(medians) < 2 {
		return out, fmt.Errorf("core: only %d windows; need >= 2: %w",
			len(medians), stats.ErrInsufficientData)
	}
	an, err := confirm.Analyze(medians, conf, errBound)
	if err != nil {
		return out, fmt.Errorf("core: CONFIRM over window medians: %w", err)
	}
	out.Confirm = an
	out.Validation = Validate(medians)
	return out, nil
}

// WindowsNeeded returns how many windows of measurement the CONFIRM
// extrapolation calls for, or -1 when it cannot tell.
func (d DiscretizedAnalysis) WindowsNeeded() int {
	return d.Confirm.RequiredRepetitions()
}
