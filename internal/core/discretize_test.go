package core

import (
	"testing"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/simrand"
	"cloudvar/internal/trace"
)

func TestDiscretizeOnHPCCloudCampaign(t *testing.T) {
	p, err := cloudmodel.HPCCloudProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	src := simrand.New(33)
	s, err := cloudmodel.RunCampaign(p, trace.FullSpeed,
		cloudmodel.DefaultCampaignConfig(4*3600), src)
	if err != nil {
		t.Fatal(err)
	}
	// 15-minute windows over 4 hours: 16 window medians.
	da, err := Discretize(s, 900, 0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(da.Medians) != 16 {
		t.Fatalf("got %d windows, want 16", len(da.Medians))
	}
	// HPCCloud noise is stochastic: window medians should converge
	// quickly to a 5% bound.
	if da.Confirm.ConvergedAt <= 0 {
		t.Errorf("stochastic cloud did not converge: %+v", da.Confirm.FinalPoint())
	}
	if needed := da.WindowsNeeded(); needed <= 0 || needed > 16 {
		t.Errorf("windows needed = %d", needed)
	}
}

func TestDiscretizeErrors(t *testing.T) {
	empty := trace.NewSeries("e", 10)
	if _, err := Discretize(empty, 900, 0.95, 0.05); err == nil {
		t.Error("empty series should error")
	}
	s := trace.NewSeries("one", 10)
	_ = s.Append(trace.Point{TimeSec: 0, BandwidthGbps: 5})
	if _, err := Discretize(s, 900, 0.95, 0.05); err == nil {
		t.Error("single window should error")
	}
	if _, err := Discretize(s, 0, 0.95, 0.05); err == nil {
		t.Error("zero window should error")
	}
}

func TestDiscretizeSmoothsNoise(t *testing.T) {
	// Raw 10 s samples of a noisy series have a much wider spread
	// than 10-minute window medians — the smoothing claim of F5.4.
	src := simrand.New(55)
	s := trace.NewSeries("noisy", 10)
	for i := 0; i < 1000; i++ {
		_ = s.Append(trace.Point{
			TimeSec:       float64(i) * 10,
			BandwidthGbps: 8 + src.Normal(0, 1.5),
		})
	}
	da, err := Discretize(s, 600, 0.95, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rawSummary := s.Summary()
	windowSpread := maxF(da.Medians) - minF(da.Medians)
	rawSpread := rawSummary.P99 - rawSummary.P01
	if windowSpread > rawSpread/2 {
		t.Errorf("window medians spread %.2f not much tighter than raw %.2f",
			windowSpread, rawSpread)
	}
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
