package tokenbucket

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeToTransferHighPhaseOnly(t *testing.T) {
	b := MustNew(c5xlarge())
	// 50 Gbit at 10 Gbps, far below the budget: 5 s.
	if got := b.TimeToTransfer(10, 50); math.Abs(got-5) > 1e-9 {
		t.Errorf("TimeToTransfer = %g, want 5", got)
	}
}

func TestTimeToTransferSpansThrottle(t *testing.T) {
	b := MustNew(Params{BudgetGbit: 90, RefillGbps: 1, HighGbps: 10, LowGbps: 1})
	// High phase: 90/(10-1) = 10 s moving 100 Gbit. Remaining 50 Gbit
	// at 1 Gbps: 50 s. Total 60 s.
	got := b.TimeToTransfer(10, 150)
	if math.Abs(got-60) > 0.1 {
		t.Errorf("TimeToTransfer = %g, want ~60", got)
	}
	if b.Tokens() > 1e-6 {
		t.Errorf("tokens = %g after depleting transfer", b.Tokens())
	}
}

func TestTimeToTransferEdgeCases(t *testing.T) {
	b := MustNew(c5xlarge())
	if got := b.TimeToTransfer(10, 0); got != 0 {
		t.Errorf("zero volume = %g", got)
	}
	if !math.IsInf(b.TimeToTransfer(0, 10), 1) {
		t.Error("zero demand should be +Inf")
	}
}

// TestTimeToTransferInvertsTransfer: for any state and volume, moving
// for the returned duration transfers (at least) the requested volume.
func TestTimeToTransferInvertsTransfer(t *testing.T) {
	f := func(initRaw, volRaw, demandRaw uint16) bool {
		p := Params{BudgetGbit: 1000, RefillGbps: 1, HighGbps: 10, LowGbps: 1}
		forward := MustNew(p)
		inverse := MustNew(p)
		init := float64(initRaw%1001) / 1000 * p.BudgetGbit
		forward.SetTokens(init)
		inverse.SetTokens(init)
		volume := float64(volRaw%2000)/10 + 0.1  // 0.1..200 Gbit
		demand := float64(demandRaw%95)/10 + 0.5 // 0.5..10 Gbps

		dt := inverse.TimeToTransfer(demand, volume)
		if math.IsInf(dt, 1) {
			return false
		}
		moved := forward.Transfer(demand, dt)
		return moved >= volume-1e-6 && moved <= volume+demand*1e-6+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestTimeToTransferCPUSemantics(t *testing.T) {
	// The burstable-CPU reading: 30 credits, baseline 0.25. A task
	// needing 60 CPU-s runs full speed until credits drain
	// (30/(1-0.25) = 40 s wall moving 40 CPU-s), then the remaining
	// 20 CPU-s at 0.25 speed: 80 s. Total 120 s.
	b := MustNew(Params{BudgetGbit: 30, RefillGbps: 0.25, HighGbps: 1, LowGbps: 0.25})
	got := b.TimeToTransfer(1, 60)
	if math.Abs(got-120) > 0.5 {
		t.Errorf("CPU wall time = %g, want ~120", got)
	}
}

func TestTimeToTransferOscillationTerminates(t *testing.T) {
	// demand below refill while throttled: the bucket re-engages and
	// the phase walker must terminate, not spin.
	b := MustNew(Params{BudgetGbit: 10, RefillGbps: 1, HighGbps: 10, LowGbps: 0.5})
	b.SetTokens(0)
	got := b.TimeToTransfer(0.4, 100) // demand 0.4 < refill 1
	if math.IsInf(got, 1) || got <= 0 {
		t.Errorf("TimeToTransfer = %g", got)
	}
	// At demand 0.4 the long-run rate is 0.4: expect ~250 s.
	if math.Abs(got-250) > 5 {
		t.Errorf("TimeToTransfer = %g, want ~250", got)
	}
}
