package tokenbucket

import (
	"fmt"
	"math"

	"cloudvar/internal/stats"
)

// Inferred holds token-bucket parameters recovered from a bandwidth
// trace, the analysis behind Figure 11: run iperf at full speed until
// the achieved bandwidth collapses and stabilises, then read off the
// high plateau, the low plateau, and the time the transition took.
type Inferred struct {
	// TimeToEmptySec is when the high→low transition occurred,
	// measured from trace start.
	TimeToEmptySec float64
	// HighGbps and LowGbps are the medians of the pre- and
	// post-transition plateaus.
	HighGbps float64
	LowGbps  float64
	// BudgetGbit is the implied bucket size: (high - refill) × time,
	// computed with the refill estimate below.
	BudgetGbit float64
	// RefillGbps is assumed, not fitted, unless the trace includes
	// rest periods; EC2's measured value is ~1.
	RefillGbps float64
	// ChangeIndex is the sample index of the detected changepoint.
	ChangeIndex int
}

// InferParams recovers token-bucket parameters from a full-speed
// bandwidth trace sampled every sampleSec seconds. refillGbps is the
// assumed replenish rate (pass 1 for EC2-like clouds; it only affects
// the budget estimate, not the plateaus).
//
// Detection is least-squares changepoint fitting: choose the split
// minimising the summed squared deviation of each side from its own
// mean. The split must leave at least three samples on each side and
// the plateaus must differ by at least 20% of the high value,
// otherwise ErrNoThrottle is returned.
func InferParams(trace []float64, sampleSec, refillGbps float64) (Inferred, error) {
	n := len(trace)
	if n < 8 {
		return Inferred{}, fmt.Errorf("tokenbucket: trace of %d samples too short to infer parameters", n)
	}
	if sampleSec <= 0 {
		return Inferred{}, fmt.Errorf("tokenbucket: non-positive sample interval %g", sampleSec)
	}

	// Prefix sums for O(n) changepoint search.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range trace {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	sse := func(lo, hi int) float64 { // [lo, hi)
		cnt := float64(hi - lo)
		sum := prefix[hi] - prefix[lo]
		sumSq := prefixSq[hi] - prefixSq[lo]
		return sumSq - sum*sum/cnt
	}

	best := -1
	bestCost := math.Inf(1)
	for split := 3; split <= n-3; split++ {
		cost := sse(0, split) + sse(split, n)
		if cost < bestCost {
			bestCost = cost
			best = split
		}
	}
	if best < 0 {
		return Inferred{}, ErrNoThrottle
	}

	high := stats.Median(trace[:best])
	low := stats.Median(trace[best:])
	if high <= 0 || high-low < 0.2*high {
		return Inferred{}, ErrNoThrottle
	}

	inf := Inferred{
		TimeToEmptySec: float64(best) * sampleSec,
		HighGbps:       high,
		LowGbps:        low,
		RefillGbps:     refillGbps,
		ChangeIndex:    best,
	}
	inf.BudgetGbit = (high - refillGbps) * inf.TimeToEmptySec
	if inf.BudgetGbit < 0 {
		inf.BudgetGbit = 0
	}
	return inf, nil
}

// Params converts the inferred values into shaper parameters.
func (inf Inferred) Params() Params {
	return Params{
		BudgetGbit: inf.BudgetGbit,
		RefillGbps: inf.RefillGbps,
		HighGbps:   inf.HighGbps,
		LowGbps:    inf.LowGbps,
	}
}

// InstanceSpec describes one EC2 c5-family instance type's nominal
// token-bucket parameters, with the incarnation-to-incarnation
// variation the paper observed ("these parameters are not always
// consistent for multiple incarnations of the same instance type",
// including the August 2019 appearance of 5 Gbps-capped c5.xlarge
// NICs).
type InstanceSpec struct {
	Name   string
	Params Params
	// HighJitterFrac and BudgetJitterFrac are the relative spreads
	// applied when incarnating a concrete VM.
	HighJitterFrac   float64
	BudgetJitterFrac float64
	// AltHighGbps, when non-zero, is an alternative high rate some
	// incarnations receive (the 5 Gbps c5.xlarge behaviour), with
	// probability AltHighProb.
	AltHighGbps float64
	AltHighProb float64
}

// C5Family returns the c5.* catalog used for Figure 11. Budgets are
// derived from the paper's time-to-empty observations (~10 minutes for
// c5.xlarge at a 9 Gbps net drain) and scale roughly with instance
// size, as do the post-depletion low rates. Each flavour's refill rate
// equals its low rate: the paper observes that transmitting at the cap
// keeps the bucket from refilling, which requires low >= refill, and
// measured ~1 Gbit/s for the xlarge.
func C5Family() []InstanceSpec {
	return []InstanceSpec{
		{
			Name: "c5.large",
			Params: Params{
				BudgetGbit: 2700, RefillGbps: 0.5, HighGbps: 10, LowGbps: 0.5,
			},
			HighJitterFrac: 0.03, BudgetJitterFrac: 0.15,
		},
		{
			Name: "c5.xlarge",
			Params: Params{
				BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
			},
			HighJitterFrac: 0.03, BudgetJitterFrac: 0.15,
			AltHighGbps: 5, AltHighProb: 0.25,
		},
		{
			Name: "c5.2xlarge",
			Params: Params{
				BudgetGbit: 16000, RefillGbps: 2, HighGbps: 10, LowGbps: 2,
			},
			HighJitterFrac: 0.03, BudgetJitterFrac: 0.12,
		},
		{
			Name: "c5.4xlarge",
			Params: Params{
				BudgetGbit: 48000, RefillGbps: 4, HighGbps: 10, LowGbps: 4,
			},
			HighJitterFrac: 0.03, BudgetJitterFrac: 0.10,
		},
	}
}

// jitterer is the subset of simrand.Source the incarnation needs;
// declared locally so this package does not import simrand (keeps the
// dependency graph flat and lets tests stub randomness).
type jitterer interface {
	Normal(mean, stddev float64) float64
	Float64() float64
}

// Incarnate samples a concrete VM's parameters from the spec,
// reproducing the incarnation variance in Figure 11's error bars.
func (s InstanceSpec) Incarnate(src jitterer) Params {
	p := s.Params
	if s.AltHighGbps > 0 && src.Float64() < s.AltHighProb {
		p.HighGbps = s.AltHighGbps
	}
	if s.HighJitterFrac > 0 {
		p.HighGbps *= 1 + src.Normal(0, s.HighJitterFrac)
	}
	if s.BudgetJitterFrac > 0 {
		p.BudgetGbit *= 1 + src.Normal(0, s.BudgetJitterFrac)
	}
	if p.HighGbps < p.LowGbps {
		p.HighGbps = p.LowGbps
	}
	if p.BudgetGbit < 0 {
		p.BudgetGbit = 0
	}
	return p
}
