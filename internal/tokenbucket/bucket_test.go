package tokenbucket

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cloudvar/internal/simrand"
)

// c5xlarge mirrors the paper's canonical example: 10 Gbps high,
// 1 Gbps low, ~1 Gbit/s refill.
func c5xlarge() Params {
	return Params{BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"valid", c5xlarge(), true},
		{"negative budget", Params{BudgetGbit: -1, RefillGbps: 1, HighGbps: 10, LowGbps: 1}, false},
		{"negative refill", Params{BudgetGbit: 1, RefillGbps: -1, HighGbps: 10, LowGbps: 1}, false},
		{"zero high", Params{BudgetGbit: 1, RefillGbps: 1, HighGbps: 0, LowGbps: 1}, false},
		{"zero low", Params{BudgetGbit: 1, RefillGbps: 1, HighGbps: 10, LowGbps: 0}, false},
		{"low above high", Params{BudgetGbit: 1, RefillGbps: 1, HighGbps: 5, LowGbps: 6}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error %v", err)
			}
			if !c.ok && err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Params{BudgetGbit: -1, RefillGbps: 1, HighGbps: 1, LowGbps: 1}); err == nil {
		t.Error("New should propagate validation errors")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid params")
		}
	}()
	MustNew(Params{BudgetGbit: -1, RefillGbps: 1, HighGbps: 1, LowGbps: 1})
}

func TestTimeToEmpty(t *testing.T) {
	p := c5xlarge()
	// 5400 Gbit budget drains at (10-1) Gbps: 600 s — the "about ten
	// minutes of full-speed transfer" the paper reports for c5.xlarge.
	if got := p.TimeToEmpty(); math.Abs(got-600) > 1e-9 {
		t.Errorf("TimeToEmpty = %g, want 600", got)
	}
	slow := Params{BudgetGbit: 100, RefillGbps: 2, HighGbps: 2, LowGbps: 1}
	if !math.IsInf(slow.TimeToEmpty(), 1) {
		t.Error("demand at refill rate should never empty the bucket")
	}
}

func TestTransferHighPhase(t *testing.T) {
	b := MustNew(c5xlarge())
	// 10 seconds at full demand: all high-rate.
	got := b.Transfer(10, 10)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("transferred %g Gbit, want 100", got)
	}
	// Tokens drained at 9 Gbps for 10 s.
	if math.Abs(b.Tokens()-(5400-90)) > 1e-9 {
		t.Errorf("tokens = %g, want 5310", b.Tokens())
	}
}

func TestTransferPhaseTransition(t *testing.T) {
	b := MustNew(c5xlarge())
	// 1000 s at full speed: 600 s high (6000 Gbit) + 400 s low
	// (400 Gbit).
	got := b.Transfer(10, 1000)
	want := 10*600 + 1*400.0
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("transferred %g, want %g", got, want)
	}
	if b.Tokens() != 0 {
		t.Errorf("tokens = %g after depletion, want 0", b.Tokens())
	}
}

func TestTransferStaysEmptyAtCap(t *testing.T) {
	b := MustNew(c5xlarge())
	b.SetTokens(0)
	// The paper: transmitting at the capped rate keeps the bucket
	// from refilling.
	got := b.Transfer(10, 100)
	if math.Abs(got-100) > 1e-9 { // 1 Gbps × 100 s
		t.Errorf("capped transfer = %g, want 100", got)
	}
	if b.Tokens() != 0 {
		t.Errorf("bucket refilled to %g while transmitting at cap", b.Tokens())
	}
}

func TestTransferLowDemandGrowsTokens(t *testing.T) {
	b := MustNew(c5xlarge())
	b.SetTokens(1000)
	// Demand 0.5 Gbps < refill 1: tokens grow at 0.5 Gbit/s.
	got := b.Transfer(0.5, 100)
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("transfer = %g, want 50", got)
	}
	if math.Abs(b.Tokens()-1050) > 1e-9 {
		t.Errorf("tokens = %g, want 1050", b.Tokens())
	}
}

func TestTransferTokensCappedAtBudget(t *testing.T) {
	b := MustNew(c5xlarge())
	b.Transfer(0.5, 1e6)
	if b.Tokens() > b.Params().BudgetGbit {
		t.Errorf("tokens %g exceeded budget %g", b.Tokens(), b.Params().BudgetGbit)
	}
}

func TestIdleRefills(t *testing.T) {
	b := MustNew(c5xlarge())
	b.SetTokens(0)
	b.Idle(100)
	if math.Abs(b.Tokens()-100) > 1e-9 {
		t.Errorf("tokens after 100 s idle = %g, want 100", b.Tokens())
	}
	b.Idle(1e9)
	if b.Tokens() != b.Params().BudgetGbit {
		t.Errorf("idle refill exceeded budget: %g", b.Tokens())
	}
}

func TestTimeToRefill(t *testing.T) {
	b := MustNew(c5xlarge())
	b.SetTokens(5300)
	if got := b.TimeToRefill(); math.Abs(got-100) > 1e-9 {
		t.Errorf("TimeToRefill = %g, want 100", got)
	}
	noRefill := MustNew(Params{BudgetGbit: 10, RefillGbps: 0, HighGbps: 1, LowGbps: 1})
	noRefill.SetTokens(5)
	if !math.IsInf(noRefill.TimeToRefill(), 1) {
		t.Error("zero refill should never refill")
	}
	noRefill.SetTokens(10)
	if noRefill.TimeToRefill() != 0 {
		t.Error("full bucket needs no refill time")
	}
}

func TestSetTokensClamps(t *testing.T) {
	b := MustNew(c5xlarge())
	b.SetTokens(-5)
	if b.Tokens() != 0 {
		t.Errorf("negative SetTokens gave %g", b.Tokens())
	}
	b.SetTokens(1e9)
	if b.Tokens() != b.Params().BudgetGbit {
		t.Errorf("oversized SetTokens gave %g", b.Tokens())
	}
}

func TestRate(t *testing.T) {
	b := MustNew(c5xlarge())
	if got := b.Rate(20); got != 10 {
		t.Errorf("full-bucket rate for demand 20 = %g, want 10", got)
	}
	if got := b.Rate(3); got != 3 {
		t.Errorf("rate limited by demand: got %g, want 3", got)
	}
	b.SetTokens(0)
	if got := b.Rate(20); got != 1 {
		t.Errorf("empty-bucket rate = %g, want 1", got)
	}
	if got := b.Rate(0); got != 0 {
		t.Errorf("zero demand rate = %g", got)
	}
}

func TestTransferZeroAndNegative(t *testing.T) {
	b := MustNew(c5xlarge())
	if got := b.Transfer(10, 0); got != 0 {
		t.Errorf("zero-duration transfer = %g", got)
	}
	before := b.Tokens()
	if got := b.Transfer(0, 50); got != 0 {
		t.Errorf("zero-demand transfer = %g", got)
	}
	if b.Tokens() < before {
		t.Error("zero-demand transfer drained tokens")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	b.Transfer(1, -1)
}

// TestTransferConservation is the core property test: transferred
// volume plus remaining tokens can never exceed initial tokens plus
// refill income, and transfer never exceeds demand × time.
func TestTransferConservation(t *testing.T) {
	src := simrand.New(404)
	f := func(budgetRaw, demandRaw, dtRaw, initRaw uint16) bool {
		p := Params{
			BudgetGbit: 1 + float64(budgetRaw%5000),
			RefillGbps: 1,
			HighGbps:   10,
			LowGbps:    1,
		}
		b := MustNew(p)
		init := float64(initRaw%5001) * p.BudgetGbit / 5000
		b.SetTokens(init)
		init = b.Tokens()
		demand := float64(demandRaw%200)/10 + 0.1 // 0.1..20 Gbps
		dt := float64(dtRaw%10000)/10 + 0.1       // 0.1..1000 s
		_ = src
		moved := b.Transfer(demand, dt)

		if moved < 0 {
			return false
		}
		if moved > demand*dt+1e-6 {
			return false // moved more than demanded
		}
		if moved > p.HighGbps*dt+1e-6 {
			return false // moved faster than the high cap
		}
		// Conservation: tokens_end <= tokens_start + refill*dt -
		// tokens spent; tokens spent >= moved - low*dt is not tight,
		// use the accounting identity instead: spend = moved when
		// tokens>0 portions; globally tokens_end - tokens_start <=
		// refill*dt - 0 and moved <= init + refill*dt + low*dt.
		if b.Tokens() > init+p.RefillGbps*dt+1e-6 {
			return false
		}
		if moved > init+p.RefillGbps*dt+p.LowGbps*dt+1e-6 {
			return false
		}
		return b.Tokens() >= 0 && b.Tokens() <= p.BudgetGbit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestTransferSplitInvariance: transferring for dt must equal
// transferring for dt/2 twice (the closed-form integration has no
// step-size dependence).
func TestTransferSplitInvariance(t *testing.T) {
	f := func(initRaw, dtRaw uint16) bool {
		p := c5xlarge()
		whole := MustNew(p)
		split := MustNew(p)
		init := float64(initRaw%5401) / 5400 * p.BudgetGbit
		whole.SetTokens(init)
		split.SetTokens(init)
		dt := float64(dtRaw%2000) + 1
		a := whole.Transfer(10, dt)
		b := split.Transfer(10, dt/2) + split.Transfer(10, dt/2)
		return math.Abs(a-b) < 1e-6 && math.Abs(whole.Tokens()-split.Tokens()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOscillationUnderBurstyDemand(t *testing.T) {
	// Figure 18's straggler oscillates between high and low rates:
	// bursty demand alternating with rests partially refills the
	// bucket, giving short high-rate windows.
	b := MustNew(Params{BudgetGbit: 50, RefillGbps: 1, HighGbps: 10, LowGbps: 1})
	b.SetTokens(0)
	sawHigh, sawLow := false, false
	for cycle := 0; cycle < 20; cycle++ {
		b.Idle(30) // rest refills 30 Gbit
		rate := b.Rate(10)
		if rate >= 10 {
			sawHigh = true
		}
		b.Transfer(10, 10) // burst drains it again
		if b.Rate(10) <= 1 {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Errorf("no oscillation: sawHigh=%v sawLow=%v", sawHigh, sawLow)
	}
}

func TestInferParamsRecoversTruth(t *testing.T) {
	p := c5xlarge()
	b := MustNew(p)
	// Build a full-speed 10 s-binned trace of 1200 s (covers the 600 s
	// transition).
	const binSec = 10
	var trace []float64
	for i := 0; i < 120; i++ {
		gbit := b.Transfer(10, binSec)
		trace = append(trace, gbit/binSec)
	}
	inf, err := InferParams(trace, binSec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inf.TimeToEmptySec-600) > 20 {
		t.Errorf("inferred time-to-empty %g, want ~600", inf.TimeToEmptySec)
	}
	if math.Abs(inf.HighGbps-10) > 0.5 {
		t.Errorf("inferred high %g, want ~10", inf.HighGbps)
	}
	if math.Abs(inf.LowGbps-1) > 0.2 {
		t.Errorf("inferred low %g, want ~1", inf.LowGbps)
	}
	if math.Abs(inf.BudgetGbit-5400) > 300 {
		t.Errorf("inferred budget %g, want ~5400", inf.BudgetGbit)
	}
	rp := inf.Params()
	if err := rp.Validate(); err != nil {
		t.Errorf("inferred params invalid: %v", err)
	}
}

func TestInferParamsNoisyTrace(t *testing.T) {
	src := simrand.New(808)
	p := c5xlarge()
	b := MustNew(p)
	var trace []float64
	for i := 0; i < 120; i++ {
		gbit := b.Transfer(10, 10)
		trace = append(trace, gbit/10*(1+src.Normal(0, 0.03)))
	}
	inf, err := InferParams(trace, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inf.TimeToEmptySec-600) > 50 {
		t.Errorf("noisy inference time-to-empty %g, want ~600", inf.TimeToEmptySec)
	}
}

func TestInferParamsErrors(t *testing.T) {
	if _, err := InferParams([]float64{1, 2, 3}, 10, 1); err == nil {
		t.Error("short trace should error")
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 9.5
	}
	if _, err := InferParams(flat, 10, 1); !errors.Is(err, ErrNoThrottle) {
		t.Errorf("flat trace error = %v, want ErrNoThrottle", err)
	}
	if _, err := InferParams(flat, 0, 1); err == nil {
		t.Error("zero sample interval should error")
	}
}

func TestC5FamilyCatalog(t *testing.T) {
	fam := C5Family()
	if len(fam) != 4 {
		t.Fatalf("catalog has %d entries, want 4", len(fam))
	}
	var prevBudget, prevLow float64
	for _, spec := range fam {
		if err := spec.Params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", spec.Name, err)
		}
		// Paper: bucket size and low bandwidth increase with VM size.
		if spec.Params.BudgetGbit <= prevBudget {
			t.Errorf("%s: budget %g not increasing", spec.Name, spec.Params.BudgetGbit)
		}
		if spec.Params.LowGbps <= prevLow {
			t.Errorf("%s: low rate %g not increasing", spec.Name, spec.Params.LowGbps)
		}
		prevBudget, prevLow = spec.Params.BudgetGbit, spec.Params.LowGbps
	}
}

func TestIncarnateVariance(t *testing.T) {
	src := simrand.New(909)
	var spec InstanceSpec
	for _, s := range C5Family() {
		if s.Name == "c5.xlarge" {
			spec = s
		}
	}
	saw5Gbps := false
	for i := 0; i < 200; i++ {
		p := spec.Incarnate(src)
		if err := p.Validate(); err != nil {
			t.Fatalf("incarnation %d invalid: %v", i, err)
		}
		if p.HighGbps < 6 {
			saw5Gbps = true
		}
	}
	// The paper observed ~5 Gbps-capped incarnations from August 2019.
	if !saw5Gbps {
		t.Error("no 5 Gbps incarnations in 200 draws (AltHighProb=0.25)")
	}
}

func BenchmarkTransferClosedForm(b *testing.B) {
	bucket := MustNew(c5xlarge())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bucket.SetTokens(5400)
		bucket.Transfer(10, 1000)
	}
}
