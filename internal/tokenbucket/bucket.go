// Package tokenbucket implements the continuous-time token-bucket
// traffic shaper that the paper reverse-engineered from Amazon EC2
// (Section 3.3), plus the trace-based parameter inference used to
// produce Figure 11.
//
// The shaper's operation, as the paper describes it: a VM's bucket
// holds a budget of tokens (Gbit). While tokens remain, the VM may
// transmit at a high rate (e.g. 10 Gbps); tokens drain at the
// transmission rate net of a replenishing rate (~1 Gbit of tokens per
// second). When the bucket empties the VM is capped to a low rate
// (e.g. 1 Gbps); because the low rate is at least the refill rate,
// transmitting at the cap keeps the bucket from refilling — the user
// must rest the network for minutes to restore the budget.
//
// The implementation adds re-engagement hysteresis: once throttled, a
// sender stays at the low rate until the bucket accumulates
// ReengageGbit of tokens. This matches the observed behaviour —
// Figure 18's straggler "oscillates between high and low bandwidths in
// short periods of time" rather than flapping instantaneously — and it
// keeps the closed-form fluid integration free of zero-length regime
// flips.
package tokenbucket

import (
	"errors"
	"fmt"
	"math"
)

// Params describes one token-bucket shaper.
type Params struct {
	// BudgetGbit is the bucket capacity in gigabits of tokens. It is
	// also the default initial fill.
	BudgetGbit float64
	// RefillGbps is the token replenishing rate in Gbit of tokens per
	// second. The paper measured ~1 for EC2 c5 instances.
	RefillGbps float64
	// HighGbps is the transmission rate while tokens remain.
	HighGbps float64
	// LowGbps is the capped rate once the bucket is empty.
	LowGbps float64
	// ReengageGbit is the token level at which a throttled sender
	// regains the high rate. Zero selects the default: 0.5% of the
	// budget, clamped to [0.1, 10] Gbit.
	ReengageGbit float64
}

// reengage returns the effective hysteresis threshold.
func (p Params) reengage() float64 {
	if p.ReengageGbit > 0 {
		return p.ReengageGbit
	}
	r := 0.005 * p.BudgetGbit
	if r < 0.1 {
		r = 0.1
	}
	if r > 10 {
		r = 10
	}
	return r
}

// Validate reports whether the parameters describe a realisable
// shaper.
func (p Params) Validate() error {
	switch {
	case p.BudgetGbit < 0:
		return fmt.Errorf("tokenbucket: negative budget %g", p.BudgetGbit)
	case p.RefillGbps < 0:
		return fmt.Errorf("tokenbucket: negative refill rate %g", p.RefillGbps)
	case p.HighGbps <= 0:
		return fmt.Errorf("tokenbucket: non-positive high rate %g", p.HighGbps)
	case p.LowGbps <= 0:
		return fmt.Errorf("tokenbucket: non-positive low rate %g", p.LowGbps)
	case p.LowGbps > p.HighGbps:
		return fmt.Errorf("tokenbucket: low rate %g exceeds high rate %g", p.LowGbps, p.HighGbps)
	case p.ReengageGbit < 0:
		return fmt.Errorf("tokenbucket: negative re-engage threshold %g", p.ReengageGbit)
	}
	return nil
}

// TimeToEmpty returns how long a transfer at full demand takes to
// drain a full bucket, in seconds; +Inf if the bucket never drains
// (demand at or below the refill rate).
func (p Params) TimeToEmpty() float64 {
	drain := p.HighGbps - p.RefillGbps
	if drain <= 0 {
		return math.Inf(1)
	}
	return p.BudgetGbit / drain
}

// Bucket is the mutable state of one shaper instance: its parameters
// plus the current token level and regime. Bucket is not safe for
// concurrent use.
type Bucket struct {
	params    Params
	tokens    float64
	throttled bool
}

// New returns a full Bucket with the given parameters.
func New(p Params) (*Bucket, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := &Bucket{params: p, tokens: p.BudgetGbit}
	b.throttled = b.tokens < p.reengage()
	return b, nil
}

// MustNew is New that panics on invalid parameters; for tests and
// package-level catalogs.
func MustNew(p Params) *Bucket {
	b, err := New(p)
	if err != nil {
		panic(err)
	}
	return b
}

// Params returns the bucket's immutable parameters.
func (b *Bucket) Params() Params { return b.params }

// Tokens returns the current token level in Gbit.
func (b *Bucket) Tokens() float64 { return b.tokens }

// Throttled reports whether the sender is currently in the low-rate
// regime.
func (b *Bucket) Throttled() bool { return b.throttled }

// ReengageGbit returns the effective hysteresis threshold.
func (b *Bucket) ReengageGbit() float64 { return b.params.reengage() }

// SetTokens overrides the token level, clamped to [0, budget], and
// resets the regime accordingly. The paper's Section 4 experiments
// vary the *initial* budget this way to model VMs with unknown prior
// traffic history.
func (b *Bucket) SetTokens(gbit float64) {
	b.tokens = math.Max(0, math.Min(gbit, b.params.BudgetGbit))
	b.throttled = b.tokens < b.params.reengage()
}

// Rate returns the instantaneous permitted rate in Gbps for a sender
// with the given demand (Gbps).
func (b *Bucket) Rate(demandGbps float64) float64 {
	if demandGbps <= 0 {
		return 0
	}
	cap := b.params.HighGbps
	if b.throttled {
		cap = b.params.LowGbps
	}
	return math.Min(demandGbps, cap)
}

// Transfer advances the bucket by dt seconds while the sender demands
// demandGbps, returning the volume actually transferred in Gbit. The
// integration is closed-form across regime transitions inside dt, so
// no step-size error accrues — this exactness is benchmarked against
// naive fixed-step integration in BenchmarkAblationBucketIntegration.
func (b *Bucket) Transfer(demandGbps, dt float64) float64 {
	if dt < 0 {
		panic("tokenbucket: negative duration")
	}
	if dt == 0 {
		return 0
	}
	if demandGbps <= 0 {
		b.Idle(dt)
		return 0
	}

	total := 0.0
	remaining := dt
	for remaining > 1e-12 {
		if !b.throttled {
			rate := math.Min(demandGbps, b.params.HighGbps)
			drain := rate - b.params.RefillGbps
			if drain <= 0 {
				// Demand at or below refill: tokens grow (to cap);
				// the whole interval runs at the demanded rate.
				b.tokens = math.Min(b.params.BudgetGbit,
					b.tokens+(-drain)*remaining)
				total += rate * remaining
				return total
			}
			tte := b.tokens / drain
			if tte >= remaining {
				b.tokens -= drain * remaining
				if b.tokens < 1e-12 {
					// The interval ended exactly at depletion
					// (within float error): flip regimes now rather
					// than leaving an infinitesimal token residue.
					b.tokens = 0
					b.throttled = true
				}
				total += rate * remaining
				return total
			}
			// High phase ends inside the interval.
			total += rate * tte
			b.tokens = 0
			b.throttled = true
			remaining -= tte
			continue
		}
		// Throttled: capped to the low rate.
		rate := math.Min(demandGbps, b.params.LowGbps)
		if rate >= b.params.RefillGbps {
			// Transmitting at or above refill keeps the bucket
			// pinned down (the paper: "transmission at the capped
			// rate is sufficient to keep it from filling back up").
			net := b.params.RefillGbps - rate // <= 0
			b.tokens = math.Max(0, b.tokens+net*remaining)
			total += rate * remaining
			return total
		}
		// Demand below refill: tokens accumulate at (refill - rate)
		// until the re-engage threshold restores the high regime.
		growth := b.params.RefillGbps - rate
		need := b.params.reengage() - b.tokens
		tReengage := need / growth
		if tReengage >= remaining {
			b.tokens += growth * remaining
			total += rate * remaining
			return total
		}
		total += rate * tReengage
		b.tokens = b.params.reengage()
		b.throttled = false
		remaining -= tReengage
	}
	return total
}

// Idle advances the bucket by dt seconds with no transmission,
// refilling tokens up to the budget cap and re-engaging the high
// regime once the threshold is reached.
func (b *Bucket) Idle(dt float64) {
	if dt < 0 {
		panic("tokenbucket: negative duration")
	}
	b.tokens = math.Min(b.params.BudgetGbit, b.tokens+b.params.RefillGbps*dt)
	if b.tokens >= b.params.reengage() {
		b.throttled = false
	}
}

// TimeToRefill returns how long the bucket needs to rest before
// returning to a full budget. This quantifies the paper's F5.4 advice
// to "rest the infrastructure" between experiments.
func (b *Bucket) TimeToRefill() float64 {
	if b.params.RefillGbps <= 0 {
		if b.tokens >= b.params.BudgetGbit {
			return 0
		}
		return math.Inf(1)
	}
	return (b.params.BudgetGbit - b.tokens) / b.params.RefillGbps
}

// ErrNoThrottle is returned by InferParams when the trace never shows
// the high→low transition (e.g. the bucket never emptied during the
// measurement).
var ErrNoThrottle = errors.New("tokenbucket: no throttling transition found in trace")
