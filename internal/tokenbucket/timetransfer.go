package tokenbucket

import "math"

// TimeToTransfer returns the wall-clock seconds needed to move
// volumeGbit at the given sustained demand, advancing the bucket
// state. It is the inverse of Transfer: where Transfer integrates
// volume over fixed time, TimeToTransfer integrates time over fixed
// volume, walking regime phases closed-form.
//
// Beyond network transfers, this is the primitive behind the
// burstable-CPU model (Section 4.2 of the paper notes that "cloud
// providers use token buckets for other resources such as CPU
// scheduling"): a task needing W seconds of full-speed CPU completes
// in TimeToTransfer(1, W) wall seconds against a credit bucket whose
// high rate is 1 and whose low rate is the instance's baseline
// fraction.
//
// Returns +Inf when the demand can never move the volume (zero
// demand).
func (b *Bucket) TimeToTransfer(demandGbps, volumeGbit float64) float64 {
	if volumeGbit <= 0 {
		return 0
	}
	if demandGbps <= 0 {
		return math.Inf(1)
	}

	total := 0.0
	remaining := volumeGbit
	// Each iteration handles one regime phase; the loop bound guards
	// against pathological oscillation (low < refill with tiny
	// re-engage thresholds).
	for iter := 0; iter < 10000 && remaining > 1e-12; iter++ {
		rate := b.Rate(demandGbps)
		if rate <= 0 {
			return math.Inf(1)
		}
		// Time until the current regime flips under sustained demand.
		phase := math.Inf(1)
		if !b.throttled {
			drain := math.Min(demandGbps, b.params.HighGbps) - b.params.RefillGbps
			if drain > 0 {
				phase = b.tokens / drain
			}
		} else {
			r := math.Min(demandGbps, b.params.LowGbps)
			if r < b.params.RefillGbps {
				phase = (b.params.reengage() - b.tokens) / (b.params.RefillGbps - r)
			}
		}
		finish := remaining / rate
		step := math.Min(phase, finish)
		if math.IsInf(step, 1) {
			// Rate never changes: finish at the current rate.
			step = finish
		}
		if step < 1e-9 {
			// Floor the step so float-boundary residues (a phase of
			// ~1e-15 s left by exact-depletion arithmetic) cannot
			// stall the walk.
			step = 1e-9
		}
		moved := b.Transfer(demandGbps, step)
		remaining -= moved
		total += step
	}
	return total
}
