package measure

import (
	"fmt"
	"io"
	"net"
	"time"
)

// IntervalStat is one summarisation window of a bulk transfer —
// the real-socket equivalent of the emulator's 10-second bins.
type IntervalStat struct {
	// Start is the window's offset from the transfer start.
	Start time.Duration
	// Bytes moved during the window.
	Bytes int64
	// Mbps is the achieved goodput in megabits per second.
	Mbps float64
}

// BulkResult summarises one bulk-transfer session.
type BulkResult struct {
	TotalBytes int64
	Duration   time.Duration
	Intervals  []IntervalStat
}

// MeanMbps returns the whole-session goodput.
func (r BulkResult) MeanMbps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.TotalBytes) * 8 / r.Duration.Seconds() / 1e6
}

// BulkConfig parameterises RunBulk.
type BulkConfig struct {
	// Duration of the transfer.
	Duration time.Duration
	// Interval is the summarisation window.
	Interval time.Duration
	// WriteBytes is the socket write size — the Figure 12 variable.
	WriteBytes int
	// Limiter, when non-nil, paces the sender (emulating provider
	// QoS on a live socket). Nil sends at line rate.
	Limiter *RateLimiter
}

// Validate checks the configuration.
func (c BulkConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("measure: bulk duration must be positive")
	case c.Interval <= 0 || c.Interval > c.Duration:
		return fmt.Errorf("measure: interval must be in (0, duration]")
	case c.WriteBytes <= 0 || c.WriteBytes > 8<<20:
		return fmt.Errorf("measure: write size %d outside (0, 8MiB]", c.WriteBytes)
	}
	return nil
}

// RunBulk connects to a measure server and streams bytes for the
// configured duration, recording per-interval goodput.
func RunBulk(addr string, cfg BulkConfig) (BulkResult, error) {
	if err := cfg.Validate(); err != nil {
		return BulkResult{}, err
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return BulkResult{}, fmt.Errorf("measure: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{modeBulk}); err != nil {
		return BulkResult{}, fmt.Errorf("measure: handshake: %w", err)
	}

	buf := make([]byte, cfg.WriteBytes)
	for i := range buf {
		buf[i] = byte(i)
	}

	var res BulkResult
	start := time.Now()
	windowStart := start
	var windowBytes int64
	deadline := start.Add(cfg.Duration)

	for time.Now().Before(deadline) {
		if cfg.Limiter != nil {
			cfg.Limiter.Wait(len(buf))
		}
		// Bound individual writes so a stalled receiver cannot hang
		// the measurement forever.
		if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return res, fmt.Errorf("measure: set deadline: %w", err)
		}
		n, err := conn.Write(buf)
		res.TotalBytes += int64(n)
		windowBytes += int64(n)
		if err != nil {
			return res, fmt.Errorf("measure: write: %w", err)
		}
		if since := time.Since(windowStart); since >= cfg.Interval {
			res.Intervals = append(res.Intervals, IntervalStat{
				Start: windowStart.Sub(start),
				Bytes: windowBytes,
				Mbps:  float64(windowBytes) * 8 / since.Seconds() / 1e6,
			})
			windowStart = time.Now()
			windowBytes = 0
		}
	}
	if windowBytes > 0 {
		since := time.Since(windowStart)
		if since > 0 {
			res.Intervals = append(res.Intervals, IntervalStat{
				Start: windowStart.Sub(start),
				Bytes: windowBytes,
				Mbps:  float64(windowBytes) * 8 / since.Seconds() / 1e6,
			})
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// MeasureRTT runs an application-level ping-pong session and returns
// one round-trip time per ping — what the paper's tcpdump/wireshark
// pipeline extracts from packet timestamps, measured here directly at
// the socket layer.
func MeasureRTT(addr string, pings, payloadBytes int) ([]time.Duration, error) {
	if pings <= 0 {
		return nil, fmt.Errorf("measure: pings must be positive")
	}
	if payloadBytes <= 0 || payloadBytes > maxPingBytes {
		return nil, fmt.Errorf("measure: payload %d outside (0, %d]", payloadBytes, maxPingBytes)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("measure: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{modeEcho}); err != nil {
		return nil, fmt.Errorf("measure: handshake: %w", err)
	}

	payload := make([]byte, payloadBytes)
	hdr := [4]byte{
		byte(payloadBytes >> 24), byte(payloadBytes >> 16),
		byte(payloadBytes >> 8), byte(payloadBytes),
	}
	frame := append(hdr[:], payload...)
	echo := make([]byte, len(frame))

	rtts := make([]time.Duration, 0, pings)
	for i := 0; i < pings; i++ {
		if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return rtts, fmt.Errorf("measure: set deadline: %w", err)
		}
		t0 := time.Now()
		if _, err := conn.Write(frame); err != nil {
			return rtts, fmt.Errorf("measure: ping %d write: %w", i, err)
		}
		if _, err := io.ReadFull(conn, echo); err != nil {
			return rtts, fmt.Errorf("measure: ping %d read: %w", i, err)
		}
		rtts = append(rtts, time.Since(t0))
	}
	// Graceful close: zero-length frame.
	var zero [4]byte
	_, _ = conn.Write(zero[:])
	return rtts, nil
}
