// Package measure is a real-TCP measurement harness over the loopback
// interface: an iperf-style bulk-throughput client, an application-
// level RTT prober (the analogue of the paper's measure-tcp-latency
// tool), and a real-time token-bucket rate limiter that reproduces
// EC2-style throttling on live sockets. It exists so the repository's
// findings are demonstrable on a real network stack, not only in the
// fluid emulator; cmd/netmeasure and the integration tests drive it.
package measure

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Protocol bytes sent by clients on connect.
const (
	modeBulk = 'B' // server discards the stream, counting bytes
	modeEcho = 'E' // server echoes length-prefixed pings
)

// Server accepts bulk and echo sessions on a loopback listener.
type Server struct {
	ln net.Listener
	wg sync.WaitGroup

	bytesReceived atomic.Int64
	sessions      atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewServer starts a server on an ephemeral loopback port.
func NewServer() (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("measure: listen: %w", err)
	}
	s := &Server{ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's dialable address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BytesReceived returns the total bulk payload received.
func (s *Server) BytesReceived() int64 { return s.bytesReceived.Load() }

// Sessions returns the number of accepted connections.
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.sessions.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	var mode [1]byte
	if _, err := io.ReadFull(conn, mode[:]); err != nil {
		return
	}
	switch mode[0] {
	case modeBulk:
		s.serveBulk(conn)
	case modeEcho:
		s.serveEcho(conn)
	}
}

func (s *Server) serveBulk(conn net.Conn) {
	buf := make([]byte, 256<<10)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			s.bytesReceived.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

// serveEcho implements the RTT protocol: each ping is a 4-byte
// big-endian length followed by that many payload bytes; the server
// echoes the frame verbatim. Length zero closes the session.
func (s *Server) serveEcho(conn net.Conn) {
	r := bufio.NewReader(conn)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
		if n == 0 {
			return
		}
		if n > maxPingBytes {
			return // protocol violation
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		if _, err := conn.Write(hdr[:]); err != nil {
			return
		}
		if _, err := conn.Write(payload); err != nil {
			return
		}
	}
}

// maxPingBytes bounds echo payloads (1 MiB), protecting the server
// from absurd length prefixes.
const maxPingBytes = 1 << 20

// ErrServerClosed is returned by clients dialing a closed server.
var ErrServerClosed = errors.New("measure: server closed")
