package measure

import (
	"math"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s
}

func TestBulkTransfer(t *testing.T) {
	s := startServer(t)
	res, err := RunBulk(s.Addr(), BulkConfig{
		Duration:   300 * time.Millisecond,
		Interval:   50 * time.Millisecond,
		WriteBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes == 0 {
		t.Fatal("no bytes moved")
	}
	if len(res.Intervals) < 3 {
		t.Errorf("only %d intervals recorded", len(res.Intervals))
	}
	if res.MeanMbps() <= 0 {
		t.Errorf("mean goodput %g", res.MeanMbps())
	}
	// Loopback should comfortably exceed 100 Mbps unshaped.
	if res.MeanMbps() < 100 {
		t.Errorf("loopback goodput %g Mbps suspiciously low", res.MeanMbps())
	}
	// Give the server a beat to drain its receive buffer.
	deadline := time.Now().Add(2 * time.Second)
	for s.BytesReceived() < res.TotalBytes && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.BytesReceived(); got != res.TotalBytes {
		t.Errorf("server received %d, client sent %d", got, res.TotalBytes)
	}
}

func TestBulkConfigValidation(t *testing.T) {
	bad := []BulkConfig{
		{Duration: 0, Interval: time.Millisecond, WriteBytes: 1},
		{Duration: time.Second, Interval: 0, WriteBytes: 1},
		{Duration: time.Second, Interval: 2 * time.Second, WriteBytes: 1},
		{Duration: time.Second, Interval: time.Millisecond, WriteBytes: 0},
		{Duration: time.Second, Interval: time.Millisecond, WriteBytes: 16 << 20},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestShapedBulkRespectsRate(t *testing.T) {
	s := startServer(t)
	const targetBytesPerSec = 4 << 20 // 4 MiB/s = ~33.5 Mbps
	lim, err := NewConstantLimiter(targetBytesPerSec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBulk(s.Addr(), BulkConfig{
		Duration:   400 * time.Millisecond,
		Interval:   100 * time.Millisecond,
		WriteBytes: 32 << 10,
		Limiter:    lim,
	})
	if err != nil {
		t.Fatal(err)
	}
	achieved := float64(res.TotalBytes) / res.Duration.Seconds()
	// Within 40% of target (timer jitter on shared CI machines).
	if achieved > targetBytesPerSec*1.4 || achieved < targetBytesPerSec*0.4 {
		t.Errorf("shaped rate %.0f B/s, target %d", achieved, targetBytesPerSec)
	}
}

func TestTokenBucketLimiterThrottles(t *testing.T) {
	s := startServer(t)
	// Budget covers ~the first 100 ms at high rate, then the low rate
	// takes over: the live-socket version of Figure 7.
	const (
		high   = 16 << 20 // 16 MiB/s
		low    = 2 << 20  // 2 MiB/s
		budget = 1600 << 10
	)
	lim, err := NewRateLimiter(budget, low, high, low)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBulk(s.Addr(), BulkConfig{
		Duration:   600 * time.Millisecond,
		Interval:   100 * time.Millisecond,
		WriteBytes: 32 << 10,
		Limiter:    lim,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The bucket must have drained well below its budget (it may
	// briefly re-engage once the sender stops, which is correct:
	// resting refills).
	if tok := lim.Tokens(); tok > budget/2 {
		t.Errorf("bucket barely used: %.0f of %d bytes left", tok, budget)
	}
	if len(res.Intervals) < 4 {
		t.Fatalf("too few intervals: %d", len(res.Intervals))
	}
	first := res.Intervals[0].Mbps
	last := res.Intervals[len(res.Intervals)-1].Mbps
	if last > first*0.7 {
		t.Errorf("no visible throttle: first %.1f Mbps, last %.1f Mbps", first, last)
	}
}

func TestMeasureRTT(t *testing.T) {
	s := startServer(t)
	rtts, err := MeasureRTT(s.Addr(), 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 50 {
		t.Fatalf("got %d RTTs", len(rtts))
	}
	for i, rtt := range rtts {
		if rtt <= 0 {
			t.Errorf("rtt[%d] = %v", i, rtt)
		}
		if rtt > time.Second {
			t.Errorf("rtt[%d] = %v on loopback", i, rtt)
		}
	}
}

func TestMeasureRTTPayloadSizeEffect(t *testing.T) {
	// Larger payloads take longer to echo — the Figure 12 mechanism
	// visible on a real socket.
	s := startServer(t)
	small, err := MeasureRTT(s.Addr(), 30, 64)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeasureRTT(s.Addr(), 30, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if median(large) < median(small) {
		t.Errorf("512K ping median %v below 64B median %v", median(large), median(small))
	}
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

func TestMeasureRTTValidation(t *testing.T) {
	s := startServer(t)
	if _, err := MeasureRTT(s.Addr(), 0, 64); err == nil {
		t.Error("zero pings should error")
	}
	if _, err := MeasureRTT(s.Addr(), 1, 0); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := MeasureRTT(s.Addr(), 1, maxPingBytes+1); err == nil {
		t.Error("oversized payload should error")
	}
	if _, err := MeasureRTT("127.0.0.1:1", 1, 64); err == nil {
		t.Error("dead address should error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, err := RunBulk(s.Addr(), BulkConfig{
				Duration: 150 * time.Millisecond, Interval: 50 * time.Millisecond,
				WriteBytes: 16 << 10,
			})
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := MeasureRTT(s.Addr(), 20, 128)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if s.Sessions() != 8 {
		t.Errorf("sessions = %d, want 8", s.Sessions())
	}
}

func TestRateLimiterValidation(t *testing.T) {
	cases := []struct{ budget, refill, high, low float64 }{
		{-1, 0, 1, 1},
		{0, -1, 1, 1},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 0, 1, 2},
	}
	for i, c := range cases {
		if _, err := NewRateLimiter(c.budget, c.refill, c.high, c.low); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewConstantLimiter(0); err == nil {
		t.Error("zero-rate constant limiter should fail")
	}
}

func TestRateLimiterPacingMath(t *testing.T) {
	// Deterministic clock: verify pacing spacing without sleeping.
	lim, err := NewConstantLimiter(1000) // 1000 B/s
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	var slept time.Duration
	lim.now = func() time.Time { return now }
	lim.sleep = func(d time.Duration) { slept += d }
	lim.last = now
	lim.nextSend = now

	lim.Wait(500) // first send immediate, schedules next at +0.5 s
	if slept != 0 {
		t.Errorf("first send slept %v", slept)
	}
	lim.Wait(500) // must wait 0.5 s
	if math.Abs(slept.Seconds()-0.5) > 1e-9 {
		t.Errorf("second send slept %v, want 500ms", slept)
	}
	lim.Wait(0) // no-op
	if math.Abs(slept.Seconds()-0.5) > 1e-9 {
		t.Errorf("zero-byte wait slept")
	}
}

func TestRateLimiterBucketSemantics(t *testing.T) {
	lim, err := NewRateLimiter(1000, 100, 10000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	lim.now = func() time.Time { return now }
	lim.sleep = func(time.Duration) {}
	lim.last = now
	lim.nextSend = now

	if lim.Throttled() {
		t.Error("fresh limiter should not be throttled")
	}
	lim.Wait(1000) // drains the bucket exactly
	if !lim.Throttled() {
		t.Error("drained limiter should throttle")
	}
	// Resting refills: 5 s × 100 B/s = 500 B ≥ re-engage threshold.
	now = now.Add(5 * time.Second)
	if lim.Throttled() {
		t.Error("rested limiter should re-engage")
	}
	if tok := lim.Tokens(); math.Abs(tok-500) > 1e-9 {
		t.Errorf("tokens = %g, want 500", tok)
	}
}
