package measure

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// RateLimiter is a real-time token bucket pacing a live sender. It is
// the wall-clock twin of internal/tokenbucket's virtual-time model:
// the same budget / refill / high / low semantics, but integrated
// against time.Now so it can throttle actual sockets the way EC2
// throttles VMs. Safe for concurrent use.
type RateLimiter struct {
	mu sync.Mutex

	// budgetBytes is the bucket capacity; refillBytesPerSec restores
	// it. highBytesPerSec applies while tokens remain,
	// lowBytesPerSec after depletion.
	budgetBytes       float64
	refillBytesPerSec float64
	highBytesPerSec   float64
	lowBytesPerSec    float64
	reengageBytes     float64

	tokens    float64
	throttled bool
	// paceDebt tracks when the next send is permitted under the
	// current rate cap.
	nextSend time.Time
	last     time.Time

	now   func() time.Time
	sleep func(time.Duration)
}

// NewRateLimiter builds a limiter with EC2-like semantics. Rates are
// in bytes per second; budget in bytes. A zero budget produces a
// constant-rate pacer at low rate.
func NewRateLimiter(budgetBytes, refillBytesPerSec, highBytesPerSec, lowBytesPerSec float64) (*RateLimiter, error) {
	switch {
	case budgetBytes < 0:
		return nil, fmt.Errorf("measure: negative budget")
	case refillBytesPerSec < 0:
		return nil, fmt.Errorf("measure: negative refill")
	case highBytesPerSec <= 0 || lowBytesPerSec <= 0:
		return nil, fmt.Errorf("measure: rates must be positive")
	case lowBytesPerSec > highBytesPerSec:
		return nil, fmt.Errorf("measure: low rate above high rate")
	}
	l := &RateLimiter{
		budgetBytes:       budgetBytes,
		refillBytesPerSec: refillBytesPerSec,
		highBytesPerSec:   highBytesPerSec,
		lowBytesPerSec:    lowBytesPerSec,
		reengageBytes:     math.Max(1, budgetBytes*0.005),
		tokens:            budgetBytes,
		now:               time.Now,
		sleep:             time.Sleep,
	}
	l.throttled = l.tokens < l.reengageBytes
	l.last = l.now()
	l.nextSend = l.last
	return l, nil
}

// NewConstantLimiter paces at a fixed rate with no bucket dynamics.
func NewConstantLimiter(bytesPerSec float64) (*RateLimiter, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("measure: rate must be positive")
	}
	return NewRateLimiter(0, 0, bytesPerSec, bytesPerSec)
}

// Tokens returns the current token level in bytes.
func (l *RateLimiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance(l.now())
	return l.tokens
}

// Throttled reports whether the limiter is in its low-rate regime.
func (l *RateLimiter) Throttled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance(l.now())
	return l.throttled
}

// advance refills tokens for elapsed wall time. Callers hold l.mu.
func (l *RateLimiter) advance(now time.Time) {
	dt := now.Sub(l.last).Seconds()
	if dt <= 0 {
		return
	}
	l.last = now
	if l.budgetBytes == 0 {
		return
	}
	l.tokens = math.Min(l.budgetBytes, l.tokens+l.refillBytesPerSec*dt)
	if l.tokens >= l.reengageBytes {
		l.throttled = false
	}
}

// Wait blocks until n bytes may be sent, charging the bucket.
func (l *RateLimiter) Wait(n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	now := l.now()
	l.advance(now)

	rate := l.highBytesPerSec
	if l.budgetBytes > 0 {
		if l.throttled {
			rate = l.lowBytesPerSec
		}
		l.tokens -= float64(n)
		if l.tokens <= 0 {
			l.tokens = 0
			l.throttled = true
		}
	}

	// Pacing: space sends so the average rate matches the cap.
	if l.nextSend.Before(now) {
		l.nextSend = now
	}
	sendAt := l.nextSend
	l.nextSend = l.nextSend.Add(time.Duration(float64(n) / rate * float64(time.Second)))
	l.mu.Unlock()

	if d := sendAt.Sub(now); d > 0 {
		l.sleep(d)
	}
}
