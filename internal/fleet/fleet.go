// Package fleet is a deterministic concurrent campaign orchestrator.
//
// The paper's methodology (Section 3) multiplies measurement campaigns
// across clouds × instances × access regimes × repetitions; running
// those cells one at a time makes figure regeneration and sweep
// studies needlessly slow on multicore hosts. fleet fans the cells of
// a declarative CampaignSpec out across a bounded worker pool while
// keeping the paper's reproducibility bar: every cell draws its
// randomness from an independent simrand substream keyed by a stable
// cell label, so the output is bit-identical to a sequential run
// regardless of worker count or completion order.
//
// Failure of one cell never aborts the fleet: errors are isolated per
// cell (including recovered panics) and reported in the aggregate
// CampaignResult, which also rolls repetitions up into per-(profile,
// regime) core.Results for the Section 5 statistical machinery.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/core"
	"cloudvar/internal/fleet/pool"
	"cloudvar/internal/simrand"
	"cloudvar/internal/sketch"
	"cloudvar/internal/stats"
	"cloudvar/internal/trace"
	"cloudvar/internal/workload"
)

// SummarizeMode selects how a cell's bandwidth summary is computed.
type SummarizeMode string

const (
	// SummarizeExact buffers and sorts the full bandwidth column
	// (stats.Sample) — bit-exact quantiles, O(n) memory. The default;
	// spelled "" so existing spec identities are byte-stable.
	SummarizeExact SummarizeMode = ""
	// SummarizeSketch streams each bin through a bounded-memory
	// t-digest (internal/sketch): O(1) memory in campaign duration,
	// quantiles within the committed rank-error contract. Part of the
	// spec identity — sketch-mode summaries are a different experiment
	// from exact ones.
	SummarizeSketch SummarizeMode = "sketch"
)

// normalize folds the explicit spelling of the default onto "".
func (m SummarizeMode) normalize() SummarizeMode {
	if m == "exact" {
		return SummarizeExact
	}
	return m
}

// Validate checks the mode is a known spelling.
func (m SummarizeMode) Validate() error {
	switch m.normalize() {
	case SummarizeExact, SummarizeSketch:
		return nil
	}
	return fmt.Errorf("fleet: unknown summarize mode %q (want exact or sketch)", string(m))
}

// CampaignSpec declares a measurement campaign matrix: every listed
// profile is measured under every listed regime, Repetitions times,
// each repetition against a fresh VM pair (a fresh substream and
// shaper incarnation, the paper's reset protocol).
type CampaignSpec struct {
	// Profiles are the cloud/instance combinations to measure.
	Profiles []cloudmodel.Profile
	// Regimes are the access regimes; nil means trace.Regimes().
	Regimes []trace.Regime
	// Repetitions is the number of fresh-pair repetitions per
	// (profile, regime); 0 means 1.
	Repetitions int
	// Config is the per-campaign measurement configuration.
	Config cloudmodel.CampaignConfig
	// Seed drives all randomness. Each cell derives an independent
	// substream from (Seed, cell label), so equal seeds give
	// bit-identical results at any worker count.
	Seed uint64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Confidence and ErrorBound parameterise the per-group median CI
	// (zero takes the paper defaults 0.95 and 0.05).
	Confidence float64
	ErrorBound float64
	// Stopping, when non-zero, turns the fixed repetition count into a
	// CONFIRM-driven sequential-stopping policy: repetitions are
	// scheduled in deterministic batches per (profile, regime) group
	// and a group stops as soon as its quantile CI fits the target
	// bound (internal/confirm). Repetitions then acts as the per-group
	// repetition *budget* (see EffectiveBudget). Part of the spec
	// identity: an adaptively sized campaign is a different experiment
	// from a fixed one. The zero value keeps today's fixed-reps
	// behavior — and today's spec keys.
	Stopping StoppingSpec
	// Scenario records the adverse-condition scenario the profiles
	// were expanded with (internal/scenario); zero for plain
	// campaigns. fleet never acts on it — it is carried so spec
	// hashing (internal/store) makes runs of different scenarios
	// incomparable, exactly like a changed matrix.
	Scenario ScenarioID
	// Summarize selects the cell-summary computation: exact (default)
	// or the bounded-memory sketch with the committed error contract.
	// Part of the spec identity, like Workload.
	Summarize SummarizeMode
	// Workload, when non-nil, replays a multi-client request stream
	// over every cell's measured path after the campaign measurement
	// (internal/workload). Part of the spec identity: a cell that
	// served traffic is a different experiment from one that did not.
	Workload *workload.Spec
	// Progress, when non-nil, is invoked serially (under a lock) as
	// each cell finishes, in completion order.
	Progress func(ev Progress)
	// Sink, when non-nil, persists each successful cell as it
	// completes and supplies previously persisted cells, which Run
	// restores without re-executing them — resume for interrupted
	// campaigns. Because every cell's randomness comes from its own
	// substream, a resumed run is bit-identical to an uninterrupted
	// one. Sink and Progress do not participate in spec identity.
	Sink Sink
}

// ScenarioID is the declarative identity of an adverse-condition
// scenario: its registry name plus the named numeric parameters it was
// instantiated with. It lives here rather than in internal/scenario so
// the orchestrator and store can carry it without depending on the
// scenario engine. encoding/json serialises the params map with sorted
// keys, so equal identities hash identically in the spec key.
type ScenarioID struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
	// Conditions are the stable IDs of the composed primitives in
	// application order (e.g. "window(start=3600,end=7200,depth=0.7)").
	// They encode every compiled parameter, so two scenarios sharing a
	// name and params but differing in structure — easy to produce
	// with hand-rolled scenarios whose Params drift from their
	// Conditions — can never collide in the spec keys.
	Conditions []string `json:"conditions,omitempty"`
}

// IsZero reports whether no scenario was applied.
func (s ScenarioID) IsZero() bool {
	return s.Name == "" && len(s.Params) == 0 && len(s.Conditions) == 0
}

// String renders "name(k=v, ...)" with sorted params, or "none".
func (s ScenarioID) String() string {
	if s.IsZero() {
		return "none"
	}
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, s.Params[k])
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// StoppingSpec configures CONFIRM-driven sequential stopping (Maricq
// et al., the paper's §5 sizing methodology): after each deterministic
// batch, a (profile, regime) group's per-repetition summary statistics
// are fed into an incremental confirm analysis, and the group stops
// once the CI of the target quantile fits the relative-error bound.
// The zero value disables stopping entirely.
type StoppingSpec struct {
	// Quantile of the per-repetition statistic whose CI is tracked;
	// 0 means the median (0.5).
	Quantile float64
	// Confidence of the tracked CI; 0 means 0.95.
	Confidence float64
	// ErrorBound is the target relative error of the CI — the
	// convergence criterion. Required (in (0, 1)) when stopping is
	// active.
	ErrorBound float64
	// MinReps is the smallest repetition count scheduled per group
	// before a stopping decision is made; 0 means the smallest n at
	// which the quantile CI is achievable at the configured confidence
	// (stats.MinSamplesForQuantileCI).
	MinReps int
	// MaxReps caps any one group's repetitions regardless of
	// convergence. Required (>= the effective MinReps).
	MaxReps int
}

// IsZero reports whether stopping is disabled.
func (s StoppingSpec) IsZero() bool { return s == StoppingSpec{} }

// EffectiveQuantile returns the tracked quantile after defaulting.
func (s StoppingSpec) EffectiveQuantile() float64 {
	if s.Quantile == 0 {
		return 0.5
	}
	return s.Quantile
}

// EffectiveConfidence returns the CI confidence after defaulting.
func (s StoppingSpec) EffectiveConfidence() float64 {
	if s.Confidence == 0 {
		return 0.95
	}
	return s.Confidence
}

// EffectiveMinReps returns the minimum repetitions scheduled per group
// before the first stopping decision: the configured MinReps, or the
// smallest sample size at which the tracked quantile's CI is
// achievable (never below 2 — a CI needs two measurements).
func (s StoppingSpec) EffectiveMinReps() int {
	min := s.MinReps
	if min == 0 {
		min = stats.MinSamplesForQuantileCI(s.EffectiveQuantile(), s.EffectiveConfidence())
	}
	if min < 2 {
		min = 2
	}
	return min
}

// Validate checks an active stopping configuration; the zero value is
// always valid (stopping disabled).
func (s StoppingSpec) Validate() error {
	if s.IsZero() {
		return nil
	}
	if q := s.EffectiveQuantile(); q <= 0 || q >= 1 {
		return fmt.Errorf("fleet: stopping quantile %g outside (0,1)", q)
	}
	if c := s.EffectiveConfidence(); c <= 0 || c >= 1 {
		return fmt.Errorf("fleet: stopping confidence %g outside (0,1)", c)
	}
	if s.ErrorBound <= 0 || s.ErrorBound >= 1 {
		return fmt.Errorf("fleet: stopping error bound %g outside (0,1)", s.ErrorBound)
	}
	if s.MinReps < 0 {
		return fmt.Errorf("fleet: negative stopping min repetitions")
	}
	if min := s.EffectiveMinReps(); s.MaxReps < min {
		return fmt.Errorf("fleet: stopping max repetitions %d below the effective minimum %d", s.MaxReps, min)
	}
	return nil
}

// Sink is the persistence hook for campaign cells. internal/store
// implements it on disk; fleet deliberately only knows the interface
// so the orchestrator stays storage-agnostic.
//
// Run calls Completed once before scheduling and Put concurrently
// from worker goroutines (implementations must be safe for concurrent
// use). Cells that errored are never offered to Put: failures are
// re-executed on resume rather than replayed from disk.
type Sink interface {
	// Completed returns the already-persisted cells keyed by cell
	// label. Labels unknown to the spec are ignored.
	Completed() (map[string]StoredCell, error)
	// Put persists one successful cell.
	Put(res CellResult) error
}

// StoredCell is a previously persisted cell as the Sink returns it.
// The summary is recomputed from the series on restore, so the sink
// only needs to round-trip the series and workload metrics themselves.
type StoredCell struct {
	Series *trace.Series
	// Workload holds the cell's served-traffic metrics; nil when the
	// cell ran without a workload spec.
	Workload *workload.CellMetrics
}

// Validate checks the specification.
func (s CampaignSpec) Validate() error {
	if len(s.Profiles) == 0 {
		return fmt.Errorf("fleet: spec has no profiles")
	}
	for i, p := range s.Profiles {
		if p.NewShaper == nil {
			return fmt.Errorf("fleet: profile %d (%s/%s) has nil shaper factory", i, p.Cloud, p.Instance)
		}
	}
	if s.Repetitions < 0 {
		return fmt.Errorf("fleet: negative repetitions")
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if err := s.Summarize.Validate(); err != nil {
		return err
	}
	if err := s.Stopping.Validate(); err != nil {
		return err
	}
	if s.Workload != nil {
		if err := s.Workload.Validate(); err != nil {
			return err
		}
	}
	// Cell labels key the per-cell substreams: a duplicate label would
	// silently replay the same stream, turning "independent
	// repetitions" into identical copies — the exact methodological
	// error the paper warns against.
	seen := make(map[string]bool)
	for _, c := range s.Cells() {
		label := c.Label()
		if seen[label] {
			return fmt.Errorf("fleet: duplicate cell %s (profiles or regimes repeat in the spec)", label)
		}
		seen[label] = true
	}
	return nil
}

// EffectiveRegimes returns the regime list after defaulting: nil
// means the paper's three standard regimes. Exported so spec hashing
// (internal/store) sees the same matrix Run executes.
func (s CampaignSpec) EffectiveRegimes() []trace.Regime {
	if len(s.Regimes) == 0 {
		return trace.Regimes()
	}
	return s.Regimes
}

// EffectiveRepetitions returns the repetition count after defaulting:
// values <= 0 mean 1.
func (s CampaignSpec) EffectiveRepetitions() int {
	if s.Repetitions <= 0 {
		return 1
	}
	return s.Repetitions
}

// EffectiveBudget returns the per-group repetition budget. Without
// stopping it is just EffectiveRepetitions. With stopping active,
// Repetitions is read as "what I can afford per group on average":
// unset means every group may run to MaxReps, and any explicit value
// is clamped into [EffectiveMinReps, MaxReps]. The adaptive scheduler
// spends budget × group-count repetitions in total, reallocating what
// converged groups leave unspent to the unconverged ones.
func (s CampaignSpec) EffectiveBudget() int {
	if s.Stopping.IsZero() {
		return s.EffectiveRepetitions()
	}
	b := s.Repetitions
	if b <= 0 {
		b = s.Stopping.MaxReps
	}
	if min := s.Stopping.EffectiveMinReps(); b < min {
		b = min
	}
	if b > s.Stopping.MaxReps {
		b = s.Stopping.MaxReps
	}
	return b
}

// Cell is one unit of fleet work: a (profile, regime, repetition)
// triple.
type Cell struct {
	Profile cloudmodel.Profile
	Regime  trace.Regime
	// Rep is the repetition index, 0-based.
	Rep int
}

// Label is the cell's stable identity: it keys the cell's random
// substream and names its series, so it must be unique within a spec
// and must not depend on enumeration order.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%s/%s/rep%d", c.Profile.Cloud, c.Profile.Instance, c.Regime.Name, c.Rep)
}

// Cells enumerates the spec's matrix in deterministic order:
// profiles outermost, then regimes, then repetitions.
func (s CampaignSpec) Cells() []Cell {
	regimes := s.EffectiveRegimes()
	reps := s.EffectiveRepetitions()
	out := make([]Cell, 0, len(s.Profiles)*len(regimes)*reps)
	for _, p := range s.Profiles {
		for _, r := range regimes {
			for rep := 0; rep < reps; rep++ {
				out = append(out, Cell{Profile: p, Regime: r, Rep: rep})
			}
		}
	}
	return out
}

// CellForLabel resolves a cell label ("cloud/instance/regime/repN")
// against the spec's matrix — the inverse of Cell.Label, used by
// distributed workers that receive shard assignments as labels over
// the wire. The repetition index is deliberately not bounded by
// EffectiveRepetitions: an adaptive schedule addresses repetitions
// beyond the fixed count, and their substreams are equally well
// defined. Labels naming a (profile, regime) outside the spec are
// errors, never guesses.
func (s CampaignSpec) CellForLabel(label string) (Cell, error) {
	for _, p := range s.Profiles {
		for _, r := range s.EffectiveRegimes() {
			prefix := p.Cloud + "/" + p.Instance + "/" + r.Name + "/rep"
			if !strings.HasPrefix(label, prefix) {
				continue
			}
			rep, err := strconv.Atoi(label[len(prefix):])
			if err != nil || rep < 0 {
				continue
			}
			c := Cell{Profile: p, Regime: r, Rep: rep}
			if c.Label() == label {
				return c, nil
			}
		}
	}
	return Cell{}, fmt.Errorf("fleet: label %q names no cell of this spec", label)
}

// CellResult is the outcome of one cell.
type CellResult struct {
	Cell   Cell
	Series *trace.Series
	// Summary describes the bandwidth column; zero when Err != nil.
	Summary stats.Summary
	// Workload holds the per-client served-traffic metrics when the
	// spec carries a workload; nil otherwise.
	Workload *workload.CellMetrics
	Err      error
}

// Progress reports one completed cell to the spec's hook.
type Progress struct {
	// Done counts cells completed so far (including this one); Total
	// is the matrix size. In an adaptive run (Stopping active) the
	// matrix size is not known upfront, so Total is the number of
	// cells scheduled so far — it grows as batches are added.
	Done, Total int
	// Result is the cell that just finished.
	Result CellResult
}

// GroupResult aggregates the repetitions of one (profile, regime)
// matrix entry: each repetition contributes its mean send-phase
// bandwidth as one sample of a core.Result, giving the F5.3
// repetition statistics (median CI, CONFIRM planning, validation)
// over fresh-pair repetitions.
type GroupResult struct {
	Cloud    string
	Instance string
	Regime   string
	// Result summarises per-repetition mean bandwidths; only
	// successful cells contribute samples.
	Result core.Result
	// Classes holds the per-SLO-class tail-latency aggregates when the
	// spec carries a workload, sorted by class name.
	Classes []ClassResult
	// Failed counts repetitions that errored.
	Failed int
	// Precision is the achieved CI precision of an adaptive run's
	// stopping decision; nil for fixed-repetition campaigns.
	Precision *GroupPrecision
}

// GroupPrecision records what an adaptive campaign achieved for one
// group: how many repetitions the stopping policy spent and how tight
// the tracked quantile CI ended up. It rides into the store manifest
// so longitudinal comparisons know each group's precision, not just
// its mean.
type GroupPrecision struct {
	// N is the number of repetitions scheduled (including failed ones).
	N int
	// HalfWidth is the final CI half-width of the tracked quantile;
	// -1 when no finite CI was ever achieved.
	HalfWidth float64
	// RelErr is the final CI half-width relative to the quantile
	// estimate; -1 when no finite CI was ever achieved.
	RelErr float64
	// Converged reports whether the final CI fits the stopping bound.
	Converged bool
	// Diverging reports whether CI widths widened as repetitions
	// accumulated — the broken-independence signature (Figure 19).
	Diverging bool
}

// ClassResult aggregates one SLO class within a (profile, regime)
// group: each repetition contributes the p99 of its served-request
// latencies as one sample, so the class's Result carries the same
// median-CI and variability machinery as bandwidth — tail latency per
// class per scenario, with confidence.
type ClassResult struct {
	Class string
	// Result summarises per-repetition p99 latencies in ms.
	Result core.Result
	// Requests counts served requests across the group's repetitions.
	Requests int
}

// CampaignResult is the aggregate outcome of a fleet run.
type CampaignResult struct {
	// Cells holds every cell outcome in Cells() enumeration order,
	// regardless of completion order.
	Cells []CellResult
	// Groups holds per-(profile, regime) aggregates in enumeration
	// order.
	Groups []GroupResult
}

// Failed returns the cells that errored, in enumeration order.
func (r CampaignResult) Failed() []CellResult {
	var out []CellResult
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// StoredLabels returns the labels of every successful cell in
// enumeration order — exactly the set a run's sink persisted (errored
// cells are never stored), and so the completeness expectation to
// hand store.MergeShards when recombining this campaign's shards.
func (r CampaignResult) StoredLabels() []string {
	out := make([]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		if c.Err == nil {
			out = append(out, c.Cell.Label())
		}
	}
	return out
}

// Err summarises cell failures: nil when every cell succeeded,
// otherwise an error naming the count and the first failure.
func (r CampaignResult) Err() error {
	failed := r.Failed()
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("fleet: %d/%d cells failed, first %s: %w",
		len(failed), len(r.Cells), failed[0].Cell.Label(), failed[0].Err)
}

// Series returns the successful series keyed by cell label.
func (r CampaignResult) Series() map[string]*trace.Series {
	out := make(map[string]*trace.Series)
	for _, c := range r.Cells {
		if c.Err == nil {
			out[c.Cell.Label()] = c.Series
		}
	}
	return out
}

// CellSource derives the random substream for one cell of a campaign
// seeded with seed. Exposed so tests and external replayers can
// regenerate any single cell without running the fleet.
func CellSource(seed uint64, c Cell) *simrand.Source {
	return simrand.New(seed).Substream("fleet/" + c.Label())
}

// WorkloadSource derives the random substream for one named consumer
// of a cell's workload replay (client/<id> arrival streams, the serve
// loop's RTT jitter). Every substream is derived from a freshly
// seeded source — never from an advanced generator — so the
// derivation is order-free: equal (seed, cell, name) always gives the
// same stream, distinct names independent ones. That is what keeps
// per-client streams byte-identical at any worker count and across
// resume boundaries.
func WorkloadSource(seed uint64, c Cell, name string) *simrand.Source {
	return simrand.New(seed).Substream("workload/" + c.Label() + "/" + name)
}

// Run executes the campaign matrix across the worker pool. The
// returned CampaignResult is bit-identical for equal (spec minus
// Workers/Progress/Sink): cell ordering, series contents and group
// statistics do not depend on scheduling, and cells restored from a
// Sink are indistinguishable from freshly executed ones. Cell errors
// are isolated — Run only returns a non-nil error for an invalid spec
// or a Sink whose Completed call fails.
func Run(spec CampaignSpec) (CampaignResult, error) {
	if err := spec.Validate(); err != nil {
		return CampaignResult{}, err
	}

	// Restore persisted cells first; only the remainder is scheduled.
	// The summary is recomputed from the stored series so a restored
	// cell cannot drift from what runCell would have produced.
	var stored map[string]StoredCell
	if spec.Sink != nil {
		var err error
		if stored, err = spec.Sink.Completed(); err != nil {
			return CampaignResult{}, fmt.Errorf("fleet: loading persisted cells: %w", err)
		}
	}
	if !spec.Stopping.IsZero() {
		return runAdaptive(spec, stored), nil
	}
	cells := spec.Cells()
	var restoreScratch workerScratch
	ps := &progressState{total: len(cells)}
	results := executeCells(spec, cells, stored, nil, &restoreScratch, ps)
	return CampaignResult{Cells: results, Groups: groupResults(spec, results)}, nil
}

// RunCells executes exactly the given cells of the campaign — the
// shard-scoped entry point distributed workers use (internal/shard):
// a coordinator partitions the matrix into label sets and each worker
// runs only its own. The cells need not form the spec's full matrix
// and may address repetitions beyond the fixed count (adaptive shard
// batches do). Everything else matches Run: per-cell substreams keyed
// by label make the results bit-identical to the same cells of a
// single-process run, the Sink restore gate applies, and cell errors
// are isolated per cell. Results are returned in the given order.
func RunCells(spec CampaignSpec, cells []Cell) ([]CellResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if c.Rep < 0 {
			return nil, fmt.Errorf("fleet: negative repetition in cell request")
		}
		label := c.Label()
		if seen[label] {
			return nil, fmt.Errorf("fleet: duplicate cell %s in request", label)
		}
		seen[label] = true
	}
	var stored map[string]StoredCell
	if spec.Sink != nil {
		var err error
		if stored, err = spec.Sink.Completed(); err != nil {
			return nil, fmt.Errorf("fleet: loading persisted cells: %w", err)
		}
	}
	var restoreScratch workerScratch
	ps := &progressState{total: len(cells)}
	return executeCells(spec, cells, stored, nil, &restoreScratch, ps), nil
}

// Assemble rolls per-cell results into a CampaignResult — the final
// aggregation step a distributed coordinator performs after gathering
// shard results back into enumeration order. Assemble(spec,
// result.Cells) reproduces result.Groups (minus adaptive precision,
// which AdaptivePlanner.Result attaches).
func Assemble(spec CampaignSpec, results []CellResult) CampaignResult {
	return CampaignResult{Cells: results, Groups: groupResults(spec, results)}
}

// SummarizeStored computes the bandwidth summary a live run would have
// produced for a stored or wire-transported series under the given
// summarization mode. The points feed the summarizer in append order —
// the order the live observer saw them — so the summary is
// byte-identical to the originating run's in both exact and sketch
// modes. This is how distributed clients (internal/shard) rebuild full
// CellResults from series that crossed a process boundary.
func SummarizeStored(mode SummarizeMode, series *trace.Series) stats.Summary {
	var scratch workerScratch
	return summarizeSeries(mode, series, &scratch)
}

// progressState is the shared done/total bookkeeping behind the
// Progress hook; total is the fixed matrix size, or the number of
// cells scheduled so far in an adaptive run.
type progressState struct {
	mu          sync.Mutex
	done, total int
}

// executeCells is the shared execution core of Run, RunCells and the
// adaptive scheduler: restore what the sink already holds, fan the
// remainder across the worker pool, and return results in cell order.
// scratches supplies the per-worker arenas (nil means size-to-fit);
// restored cells advance ps.done without firing the Progress hook,
// matching the established resume semantics.
func executeCells(spec CampaignSpec, cells []Cell, stored map[string]StoredCell, scratches []workerScratch, restoreScratch *workerScratch, ps *progressState) []CellResult {
	results := make([]CellResult, len(cells))
	var pending []int
	for i, c := range cells {
		// A stored cell is only restorable when its workload presence
		// matches the spec: a cell persisted before a workload section
		// was added carries no traffic metrics and must re-execute.
		// (The store's spec-key gate normally prevents the mismatch;
		// this keeps fleet correct for any Sink.)
		if sc, ok := stored[c.Label()]; ok && sc.Series != nil && (spec.Workload == nil) == (sc.Workload == nil) {
			// Recompute the summary under the spec's mode: the stored
			// points replay into the summarizer in append order — the
			// same order the live observer saw them — so a restored
			// cell's summary is byte-identical to a fresh run's in both
			// exact and sketch modes.
			results[i] = CellResult{Cell: c, Series: sc.Series, Summary: summarizeSeries(spec.Summarize, sc.Series, restoreScratch), Workload: sc.Workload}
			ps.done++
			continue
		}
		pending = append(pending, i)
	}

	// Each worker owns a scratch arena reused across the cells it
	// runs. Scratch never carries state between cells — every cell's
	// randomness comes from its own substream and every series is
	// freshly built — so results stay bit-identical at any worker
	// count (the determinism-vs-reuse contract, proven by the
	// workers=1-vs-8 property tests).
	if scratches == nil {
		scratches = make([]workerScratch, pool.NumWorkers(spec.Workers, len(pending)))
	}
	fresh, errs := pool.CollectWorker(len(pending), spec.Workers, func(w, j int) (CellResult, error) {
		res := runCell(spec, cells[pending[j]], &scratches[w])
		if spec.Sink != nil && res.Err == nil {
			if err := spec.Sink.Put(res); err != nil {
				// The measurement succeeded but did not persist; fail
				// the cell so the loss is visible and the cell is
				// re-executed on the next resume.
				res = CellResult{Cell: res.Cell, Err: fmt.Errorf("fleet: cell %s: persisting: %w", res.Cell.Label(), err)}
			}
		}
		if spec.Progress != nil {
			ps.mu.Lock()
			ps.done++
			ev := Progress{Done: ps.done, Total: ps.total, Result: res}
			// The deferred unlock keeps a panicking hook from
			// deadlocking the other workers; the panic itself is
			// recovered by the pool and folded into the cell below.
			func() {
				defer ps.mu.Unlock()
				spec.Progress(ev)
			}()
		}
		return res, nil
	})
	// runCell recovers its own panics into CellResult.Err, so the only
	// way errs[j] is set is a panic in the Progress hook; mark the cell
	// failed rather than returning a zero CellResult with a nil Err.
	for j, i := range pending {
		results[i] = fresh[j]
		if errs[j] != nil {
			results[i] = CellResult{Cell: cells[i], Err: errs[j]}
		}
	}
	return results
}

// workerScratch is one fleet worker's reusable arena: the campaign
// burst buffers plus the summarizer state (the bandwidth column and
// sorted sample in exact mode, the streaming sketch in sketch mode).
// Contents never outlive a cell.
type workerScratch struct {
	campaign cloudmodel.CampaignScratch
	bw       []float64
	sample   stats.Sample
	stream   sketch.Stream
}

// summarizeSeries computes a series' bandwidth summary under the
// spec's summarization mode, reusing the scratch arena. The points
// feed the summarizer in append order, so calling this on a stored
// series reproduces a live run's summary byte-for-byte.
func summarizeSeries(mode SummarizeMode, series *trace.Series, scratch *workerScratch) stats.Summary {
	if mode.normalize() == SummarizeSketch {
		scratch.stream.Reset()
		for _, pt := range series.Points {
			scratch.stream.Add(pt.BandwidthGbps)
		}
		return scratch.stream.Summary()
	}
	scratch.bw = series.AppendBandwidths(scratch.bw[:0])
	return scratch.sample.Reset(scratch.bw).Summary()
}

// runCell measures one cell on its own substream. Panics are folded
// into the cell's Err before the caller reports progress, so Done
// reaches Total even when a cell blows up.
func runCell(spec CampaignSpec, c Cell, scratch *workerScratch) (res CellResult) {
	defer func() {
		if r := recover(); r != nil {
			res = CellResult{Cell: c, Err: fmt.Errorf("fleet: cell %s panicked: %v", c.Label(), r)}
		}
	}()
	src := CellSource(spec.Seed, c)
	// In sketch mode the summarizer rides the campaign itself: every
	// bin streams into the bounded-memory sketch as it is produced, so
	// the summary path never re-walks (or needs) the full column.
	var observe func(trace.Point)
	sketchMode := spec.Summarize.normalize() == SummarizeSketch
	if sketchMode {
		scratch.stream.Reset()
		observe = func(pt trace.Point) { scratch.stream.Add(pt.BandwidthGbps) }
	}
	series, err := cloudmodel.RunCampaignObserved(c.Profile, c.Regime, spec.Config, src, &scratch.campaign, observe)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("fleet: cell %s: %w", c.Label(), err)}
	}
	// Relabel with the repetition-qualified identity so cells of the
	// same (profile, regime) stay distinguishable downstream.
	series.Label = c.Label()
	var wl *workload.CellMetrics
	if spec.Workload != nil {
		wl, err = cloudmodel.RunWorkload(*spec.Workload, series, c.Profile, spec.Config, func(name string) *simrand.Source {
			return WorkloadSource(spec.Seed, c, name)
		})
		if err != nil {
			return CellResult{Cell: c, Err: fmt.Errorf("fleet: cell %s: %w", c.Label(), err)}
		}
	}
	if sketchMode {
		return CellResult{Cell: c, Series: series, Summary: scratch.stream.Summary(), Workload: wl}
	}
	// Summarise through the scratch: same bits as series.Summary(),
	// no per-cell column copy or sort buffer.
	scratch.bw = series.AppendBandwidths(scratch.bw[:0])
	return CellResult{Cell: c, Series: series, Summary: scratch.sample.Reset(scratch.bw).Summary(), Workload: wl}
}

// groupResults rolls cell results up into per-(profile, regime)
// aggregates, preserving enumeration order.
func groupResults(spec CampaignSpec, cells []CellResult) []GroupResult {
	type key struct{ cloud, instance, regime string }
	idx := make(map[key]int)
	var groups []GroupResult
	samples := make(map[key][]float64)
	// Per-class tail-latency samples: each successful cell contributes
	// the p99 of its served-request latencies, per SLO class.
	classSamples := make(map[key]map[string][]float64)
	classRequests := make(map[key]map[string]int)

	for _, c := range cells {
		k := key{c.Cell.Profile.Cloud, c.Cell.Profile.Instance, c.Cell.Regime.Name}
		if _, ok := idx[k]; !ok {
			idx[k] = len(groups)
			groups = append(groups, GroupResult{Cloud: k.cloud, Instance: k.instance, Regime: k.regime})
		}
		if c.Err != nil {
			groups[idx[k]].Failed++
			continue
		}
		samples[k] = append(samples[k], c.Summary.Mean)
		if c.Workload == nil {
			continue
		}
		if classSamples[k] == nil {
			classSamples[k] = make(map[string][]float64)
			classRequests[k] = make(map[string]int)
		}
		for class, lats := range c.Workload.ClassLatencies() {
			if len(lats) == 0 {
				continue
			}
			classSamples[k][class] = append(classSamples[k][class], stats.Quantile(lats, 0.99))
			classRequests[k][class] += len(lats)
		}
	}
	for k, gi := range idx {
		name := fmt.Sprintf("%s/%s/%s", k.cloud, k.instance, k.regime)
		groups[gi].Result = core.BuildResult(name, samples[k], spec.Confidence, spec.ErrorBound)
		if len(classSamples[k]) == 0 {
			continue
		}
		classes := make([]string, 0, len(classSamples[k]))
		for class := range classSamples[k] {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			groups[gi].Classes = append(groups[gi].Classes, ClassResult{
				Class:    class,
				Result:   core.BuildResult(name+"/"+class, classSamples[k][class], spec.Confidence, spec.ErrorBound),
				Requests: classRequests[k][class],
			})
		}
	}
	return groups
}
