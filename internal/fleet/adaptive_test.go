package fleet_test

import (
	"fmt"
	"testing"

	"cloudvar/internal/fleet"
	"cloudvar/internal/testutil"
)

// adaptiveSpec builds the small adaptive matrix the stopping tests
// share: one EC2 profile over two regimes (2 groups), with the given
// stopping policy and per-group budget.
func adaptiveSpec(t *testing.T, seed uint64, workers int, budget int, st fleet.StoppingSpec) fleet.CampaignSpec {
	t.Helper()
	spec := testutil.EC2Spec(t, seed, workers)
	spec.Repetitions = budget
	spec.Stopping = st
	return spec
}

// TestAdaptiveDeterministicAcrossWorkerCounts extends the fleet's
// tentpole guarantee to the sequential-stopping scheduler: with an
// error bound tight enough to force budget reallocation past the
// minimum, the full result — cells, groups, and the achieved-precision
// records the stopping decision produced — is bit-identical at any
// worker count.
func TestAdaptiveDeterministicAcrossWorkerCounts(t *testing.T) {
	policy := fleet.StoppingSpec{ErrorBound: 0.001, MaxReps: 12}
	seq, err := fleet.Run(adaptiveSpec(t, 7, 1, 8, policy))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	want := testutil.EncodeResult(t, seq)
	minReps := policy.EffectiveMinReps()
	grew := false
	for _, g := range seq.Groups {
		if g.Precision == nil {
			t.Fatalf("adaptive group %s/%s has no precision record", g.Instance, g.Regime)
		}
		if g.Precision.N > minReps {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("tight bound never grew any group past the minimum %d — reallocation untested", minReps)
	}
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := fleet.Run(adaptiveSpec(t, 7, workers, 8, policy))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			if got := testutil.EncodeResult(t, res); got != want {
				t.Fatalf("adaptive run at workers=%d differs from sequential run", workers)
			}
		})
	}
}

// TestAdaptiveLooseBoundStopsAtMinimum: a bound the data easily meets
// converges every group at the effective minimum — the budget headroom
// is left unspent, which is the whole point of adaptive sizing.
func TestAdaptiveLooseBoundStopsAtMinimum(t *testing.T) {
	policy := fleet.StoppingSpec{ErrorBound: 0.9, MaxReps: 20}
	res, err := fleet.Run(adaptiveSpec(t, 7, 4, 20, policy))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	minReps := policy.EffectiveMinReps()
	for _, g := range res.Groups {
		p := g.Precision
		if p == nil {
			t.Fatalf("group %s/%s has no precision record", g.Instance, g.Regime)
		}
		if p.N != minReps {
			t.Errorf("group %s/%s ran %d repetitions, want the minimum %d", g.Instance, g.Regime, p.N, minReps)
		}
		if !p.Converged {
			t.Errorf("group %s/%s did not report convergence under a 90%% bound", g.Instance, g.Regime)
		}
		if len(g.Result.Samples) != minReps {
			t.Errorf("group %s/%s aggregated %d samples, want %d", g.Instance, g.Regime, len(g.Result.Samples), minReps)
		}
	}
}

// TestAdaptiveTightBoundExhaustsBudget: an unreachable bound drives
// every group to MaxReps (the default budget when Repetitions is
// unset), with convergence honestly reported false.
func TestAdaptiveTightBoundExhaustsBudget(t *testing.T) {
	policy := fleet.StoppingSpec{ErrorBound: 1e-9, MaxReps: 10}
	res, err := fleet.Run(adaptiveSpec(t, 7, 4, 0, policy))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.Groups {
		p := g.Precision
		if p == nil {
			t.Fatalf("group %s/%s has no precision record", g.Instance, g.Regime)
		}
		if p.N != policy.MaxReps {
			t.Errorf("group %s/%s ran %d repetitions, want MaxReps %d", g.Instance, g.Regime, p.N, policy.MaxReps)
		}
		if p.Converged {
			t.Errorf("group %s/%s claims convergence under a 1e-9 bound", g.Instance, g.Regime)
		}
		total += p.N
	}
	if want := len(res.Cells); total != want {
		t.Errorf("precision records account for %d cells, result holds %d", total, want)
	}
}

// TestAdaptiveBudgetRespected: the campaign never spends more than
// EffectiveBudget × groups, and no group runs below the effective
// minimum or above MaxReps.
func TestAdaptiveBudgetRespected(t *testing.T) {
	policy := fleet.StoppingSpec{ErrorBound: 1e-9, MaxReps: 12}
	spec := adaptiveSpec(t, 7, 4, 7, policy)
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	budget := spec.EffectiveBudget() * len(res.Groups)
	if len(res.Cells) > budget {
		t.Errorf("campaign ran %d cells, budget is %d", len(res.Cells), budget)
	}
	minReps := policy.EffectiveMinReps()
	for _, g := range res.Groups {
		if g.Precision.N < minReps || g.Precision.N > policy.MaxReps {
			t.Errorf("group %s/%s ran %d repetitions, want within [%d, %d]",
				g.Instance, g.Regime, g.Precision.N, minReps, policy.MaxReps)
		}
	}
	// An unreachable bound should leave no budget on the table.
	if len(res.Cells) != budget {
		t.Errorf("unreachable bound left budget unspent: ran %d of %d cells", len(res.Cells), budget)
	}
}

// TestFixedPathCarriesNoPrecision: without a stopping policy the
// result is exactly yesterday's — in particular no precision records,
// so EncodeResult bytes (and golden files downstream) are unchanged.
func TestFixedPathCarriesNoPrecision(t *testing.T) {
	res, err := fleet.Run(testutil.EC2Spec(t, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if g.Precision != nil {
			t.Fatalf("fixed-repetition group %s/%s carries a precision record", g.Instance, g.Regime)
		}
	}
}

func TestStoppingSpecValidate(t *testing.T) {
	valid := []fleet.StoppingSpec{
		{}, // zero value: stopping disabled, always valid
		{ErrorBound: 0.05, MaxReps: 10},
		{Quantile: 0.9, Confidence: 0.99, ErrorBound: 0.1, MinReps: 50, MaxReps: 60},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %d rejected: %v", i, err)
		}
	}
	invalid := []fleet.StoppingSpec{
		{MaxReps: 10},                                   // active but no error bound
		{ErrorBound: 1, MaxReps: 10},                    // bound not in (0,1)
		{Quantile: 1.5, ErrorBound: 0.05, MaxReps: 10},  // quantile out of range
		{Confidence: -1, ErrorBound: 0.05, MaxReps: 10}, // confidence out of range
		{ErrorBound: 0.05, MinReps: -1, MaxReps: 10},    // negative minimum
		{ErrorBound: 0.05, MaxReps: 3},                  // below effective minimum (6 for the median at 95%)
		{ErrorBound: 0.05, MinReps: 8, MaxReps: 7},      // max below explicit min
	}
	for i, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %d (%+v) accepted", i, s)
		}
	}
	// CampaignSpec.Validate must surface the stopping error too.
	spec := testutil.EC2Spec(t, 1, 1)
	spec.Stopping = fleet.StoppingSpec{MaxReps: 10}
	if err := spec.Validate(); err == nil {
		t.Error("campaign with invalid stopping spec validated")
	}
}

// TestEffectiveBudget pins the budget-defaulting contract: unset means
// MaxReps, anything set is clamped into [EffectiveMinReps, MaxReps].
func TestEffectiveBudget(t *testing.T) {
	policy := fleet.StoppingSpec{ErrorBound: 0.05, MaxReps: 15} // effective min 6
	cases := []struct{ reps, want int }{
		{0, 15},  // unset: the cap itself
		{3, 6},   // below the minimum: clamped up
		{9, 9},   // in range: as given
		{40, 15}, // above the cap: clamped down
	}
	for _, c := range cases {
		spec := fleet.CampaignSpec{Repetitions: c.reps, Stopping: policy}
		if got := spec.EffectiveBudget(); got != c.want {
			t.Errorf("EffectiveBudget with reps=%d: got %d, want %d", c.reps, got, c.want)
		}
	}
	// Without stopping, the budget is just the repetition count.
	fixed := fleet.CampaignSpec{Repetitions: 4}
	if got := fixed.EffectiveBudget(); got != 4 {
		t.Errorf("fixed-path EffectiveBudget = %d, want 4", got)
	}
}
