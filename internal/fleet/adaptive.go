package fleet

import (
	"fmt"
	"math"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/confirm"
	"cloudvar/internal/fleet/pool"
	"cloudvar/internal/trace"
)

// Adaptive campaign sizing: the CONFIRM analysis (internal/confirm)
// promoted from post-hoc reporting into the scheduler itself, per the
// paper's §5 methodology. Fixed repetition counts are the central
// failure mode the paper warns about — short campaigns reach wrong
// conclusions where variance is high, long ones waste budget where it
// is low — so when CampaignSpec.Stopping is active, repetition counts
// are decided by achieved CI precision instead.
//
// Determinism contract: the stopping decision is derived only from
// cell substreams and arrival-order-independent group state. Cells run
// in batches with a barrier between rounds; within a round, per-group
// trackers are fed in repetition order after *all* of the round's
// cells finished, never in completion order. Every quantity the
// schedule depends on (summaries, trackers, budget arithmetic) is a
// pure function of (spec minus Workers/Progress/Sink), so adaptive
// runs are bit-identical at any worker count and across resume — the
// same property the fixed path proves, extended to the schedule
// itself.
//
// The schedule lives in AdaptivePlanner, a feed-forward state machine
// (NextBatch → execute anywhere → Observe, repeat): runAdaptive drives
// it with the local worker pool, and a distributed coordinator
// (internal/shard) drives the identical machine with cells executed on
// remote workers — the batch barrier becomes the coordinator's
// synchronization point, and because the planner never sees *where* a
// cell ran, the schedule (and therefore every result byte) matches the
// single-process run.

// adaptiveGroup is the scheduler's per-(profile, regime) state.
type adaptiveGroup struct {
	profile cloudmodel.Profile
	regime  trace.Regime
	// results holds the group's cells in repetition order.
	results []CellResult
	// tracker accumulates each successful repetition's summary mean.
	tracker *confirm.Tracker
	// stopped marks a group the policy will not grow again: its CI
	// converged or it hit MaxReps.
	stopped bool
}

// AdaptivePlanner is the sequential-stopping schedule as an explicit
// state machine. Repeatedly take NextBatch, execute its cells by any
// means that honors the per-cell substream contract (the local pool,
// RunCells on remote shards), and feed every result of the batch back
// through Observe; when NextBatch returns an empty batch, Result holds
// the campaign outcome. The batch sequence is a pure function of (spec
// minus Workers/Progress/Sink) and the observed summaries, so two
// drivers that execute cells faithfully produce bit-identical
// campaigns.
type AdaptivePlanner struct {
	spec             CampaignSpec
	groups           []*adaptiveGroup
	targets          []int
	budget, spent    int
	minReps, maxReps int
	// batch/owner hold the outstanding batch between NextBatch and
	// Observe; ready distinguishes "not yet gathered" from "gathered
	// and empty" (campaign complete).
	batch []Cell
	owner []int
	ready bool
}

// NewAdaptivePlanner validates the spec and builds the scheduler state
// for its stopping policy. The spec must have Stopping active.
func NewAdaptivePlanner(spec CampaignSpec) (*AdaptivePlanner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Stopping.IsZero() {
		return nil, fmt.Errorf("fleet: adaptive planner needs a stopping policy")
	}
	return newPlanner(spec), nil
}

// newPlanner builds the planner for an already-validated spec.
func newPlanner(spec CampaignSpec) *AdaptivePlanner {
	st := spec.Stopping
	regimes := spec.EffectiveRegimes()
	groups := make([]*adaptiveGroup, 0, len(spec.Profiles)*len(regimes))
	for _, p := range spec.Profiles {
		for _, r := range regimes {
			// Parameters were validated with the spec; a tracker error
			// here would be a programming error, so surface it loudly.
			tr, err := confirm.NewTracker(st.EffectiveQuantile(), st.EffectiveConfidence(), st.ErrorBound)
			if err != nil {
				panic(fmt.Sprintf("fleet: stopping spec validated but tracker rejected it: %v", err))
			}
			groups = append(groups, &adaptiveGroup{profile: p, regime: r, tracker: tr})
		}
	}
	p := &AdaptivePlanner{
		spec:    spec,
		groups:  groups,
		targets: make([]int, len(groups)),
		minReps: st.EffectiveMinReps(),
		maxReps: st.MaxReps,
		// The campaign-wide repetition budget. Every group starts at
		// the minimum; what converged groups leave unspent is
		// reallocated to the unconverged ones, up to MaxReps each.
		budget: spec.EffectiveBudget() * len(groups),
	}
	for i := range p.targets {
		p.targets[i] = p.minReps
	}
	return p
}

// Budget returns the campaign-wide repetition budget — an upper bound
// on the total cells the schedule can ever issue, useful for sizing
// worker arenas upfront.
func (p *AdaptivePlanner) Budget() int { return p.budget }

// Scheduled returns the number of cells issued so far: consumed
// batches plus the outstanding one. It is the Progress total an
// adaptive driver should report.
func (p *AdaptivePlanner) Scheduled() int { return p.spent + len(p.batch) }

// NextBatch returns the next deterministic batch of cells — per group,
// the repetitions between the current count and its target, in
// enumeration order — or an empty batch when the campaign is
// complete. The same batch is returned until Observe consumes it.
func (p *AdaptivePlanner) NextBatch() []Cell {
	if !p.ready {
		for gi, g := range p.groups {
			for rep := len(g.results); rep < p.targets[gi]; rep++ {
				p.batch = append(p.batch, Cell{Profile: g.profile, Regime: g.regime, Rep: rep})
				p.owner = append(p.owner, gi)
			}
		}
		p.ready = true
	}
	return p.batch
}

// Observe consumes the outstanding batch's results — one per cell, in
// batch order — then makes the round's stopping decisions and
// reallocates unspent budget to the unconverged groups. Results feed
// the group trackers in repetition order only here, after the whole
// batch finished: the barrier that keeps the schedule independent of
// completion order.
func (p *AdaptivePlanner) Observe(results []CellResult) error {
	if !p.ready {
		return fmt.Errorf("fleet: Observe without an outstanding batch")
	}
	if len(results) != len(p.batch) {
		return fmt.Errorf("fleet: observed %d results for a batch of %d", len(results), len(p.batch))
	}
	for i, res := range results {
		if want := p.batch[i].Label(); res.Cell.Label() != want {
			return fmt.Errorf("fleet: result %d is cell %s, batch expects %s", i, res.Cell.Label(), want)
		}
	}
	for i, res := range results {
		g := p.groups[p.owner[i]]
		g.results = append(g.results, res)
		if res.Err == nil {
			g.tracker.Push(res.Summary.Mean)
		}
		p.spent++
	}
	p.batch, p.owner, p.ready = nil, nil, false

	// Stopping decisions, then budget reallocation over whatever is
	// still unconverged.
	var open []int
	for gi, g := range p.groups {
		if g.stopped {
			continue
		}
		if pt, ok := g.tracker.Latest(); ok && pt.WithinBound {
			g.stopped = true
			continue
		}
		if len(g.results) >= p.maxReps {
			g.stopped = true
			continue
		}
		open = append(open, gi)
	}
	remaining := p.budget - p.spent
	if len(open) == 0 || remaining <= 0 {
		return nil
	}
	base, extra := remaining/len(open), remaining%len(open)
	for idx, gi := range open {
		share := base
		if idx < extra {
			share++
		}
		if share == 0 {
			continue
		}
		g := p.groups[gi]
		n := len(g.results)
		// CONFIRM's c/sqrt(n) extrapolation guides the next target;
		// when it has no usable prediction, grow geometrically (×1.5)
		// so a stubborn group converges in O(log MaxReps) rounds.
		want := g.tracker.Analysis().RequiredRepetitions()
		if want <= n {
			want = n + (n+1)/2
		}
		add := want - n
		if add > share {
			add = share
		}
		if n+add > p.maxReps {
			add = p.maxReps - n
		}
		if add <= 0 {
			continue
		}
		p.targets[gi] = n + add
	}
	return nil
}

// Result assembles the campaign outcome: cells in enumeration order
// (profiles outermost, then regimes, then each group's repetitions
// 0..n-1), group aggregates, and each group's achieved CI precision.
func (p *AdaptivePlanner) Result() CampaignResult {
	var cells []CellResult
	for _, g := range p.groups {
		cells = append(cells, g.results...)
	}
	result := CampaignResult{Cells: cells, Groups: groupResults(p.spec, cells)}
	// groupResults builds groups in first-cell-encounter order, which
	// is exactly the scheduler's enumeration order, so precision
	// attaches 1:1.
	for gi := range result.Groups {
		result.Groups[gi].Precision = p.groups[gi].precision()
	}
	return result
}

// runAdaptive executes the campaign under the sequential-stopping
// policy with the local worker pool. spec has been validated; stored
// holds the sink's persisted cells (nil without a sink).
func runAdaptive(spec CampaignSpec, stored map[string]StoredCell) CampaignResult {
	p := newPlanner(spec)
	// One scratch arena per worker, reused across batches; contents
	// never outlive a cell (the determinism-vs-reuse contract).
	scratches := make([]workerScratch, pool.NumWorkers(spec.Workers, p.Budget()))
	var restoreScratch workerScratch
	ps := &progressState{}
	for {
		batch := p.NextBatch()
		if len(batch) == 0 {
			break
		}
		ps.total = p.Scheduled()
		results := executeCells(spec, batch, stored, scratches, &restoreScratch, ps)
		if err := p.Observe(results); err != nil {
			// The driver above hands Observe exactly what NextBatch
			// issued; a mismatch is a programming error.
			panic(fmt.Sprintf("fleet: adaptive batch bookkeeping: %v", err))
		}
	}
	return p.Result()
}

// precision snapshots the group's achieved CI state.
func (g *adaptiveGroup) precision() *GroupPrecision {
	p := &GroupPrecision{N: len(g.results), HalfWidth: -1, RelErr: -1}
	an := g.tracker.Analysis()
	p.Diverging = an.Diverging()
	if pt, ok := g.tracker.Latest(); ok && !math.IsNaN(pt.Lo) {
		p.HalfWidth = (pt.Hi - pt.Lo) / 2
		p.Converged = pt.WithinBound
		// A zero quantile estimate makes RelErr non-finite; keep the
		// -1 sentinel so the record stays JSON-encodable everywhere.
		if !math.IsInf(pt.RelErr, 0) && !math.IsNaN(pt.RelErr) {
			p.RelErr = pt.RelErr
		}
	}
	return p
}
