package fleet

import (
	"fmt"
	"math"
	"sync"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/confirm"
	"cloudvar/internal/fleet/pool"
	"cloudvar/internal/trace"
)

// Adaptive campaign sizing: the CONFIRM analysis (internal/confirm)
// promoted from post-hoc reporting into the scheduler itself, per the
// paper's §5 methodology. Fixed repetition counts are the central
// failure mode the paper warns about — short campaigns reach wrong
// conclusions where variance is high, long ones waste budget where it
// is low — so when CampaignSpec.Stopping is active, repetition counts
// are decided by achieved CI precision instead.
//
// Determinism contract: the stopping decision is derived only from
// cell substreams and arrival-order-independent group state. Cells run
// in batches with a barrier between rounds; within a round, per-group
// trackers are fed in repetition order after *all* of the round's
// cells finished, never in completion order. Every quantity the
// schedule depends on (summaries, trackers, budget arithmetic) is a
// pure function of (spec minus Workers/Progress/Sink), so adaptive
// runs are bit-identical at any worker count and across resume — the
// same property the fixed path proves, extended to the schedule
// itself.

// adaptiveGroup is the scheduler's per-(profile, regime) state.
type adaptiveGroup struct {
	profile cloudmodel.Profile
	regime  trace.Regime
	// results holds the group's cells in repetition order.
	results []CellResult
	// tracker accumulates each successful repetition's summary mean.
	tracker *confirm.Tracker
	// stopped marks a group the policy will not grow again: its CI
	// converged or it hit MaxReps.
	stopped bool
}

// runAdaptive executes the campaign under the sequential-stopping
// policy. spec has been validated; stored holds the sink's persisted
// cells (nil without a sink).
func runAdaptive(spec CampaignSpec, stored map[string]StoredCell) CampaignResult {
	st := spec.Stopping
	minReps, maxReps := st.EffectiveMinReps(), st.MaxReps

	regimes := spec.EffectiveRegimes()
	groups := make([]*adaptiveGroup, 0, len(spec.Profiles)*len(regimes))
	for _, p := range spec.Profiles {
		for _, r := range regimes {
			// Parameters were validated with the spec; a tracker error
			// here would be a programming error, so surface it loudly.
			tr, err := confirm.NewTracker(st.EffectiveQuantile(), st.EffectiveConfidence(), st.ErrorBound)
			if err != nil {
				panic(fmt.Sprintf("fleet: stopping spec validated but tracker rejected it: %v", err))
			}
			groups = append(groups, &adaptiveGroup{profile: p, regime: r, tracker: tr})
		}
	}

	// The campaign-wide repetition budget. Every group starts at the
	// minimum; what converged groups leave unspent is reallocated to
	// the unconverged ones, up to MaxReps each.
	budget := spec.EffectiveBudget() * len(groups)
	spent := 0
	targets := make([]int, len(groups))
	for i := range targets {
		targets[i] = minReps
	}

	var mu sync.Mutex
	done := 0
	// One scratch arena per worker, reused across batches; contents
	// never outlive a cell (the determinism-vs-reuse contract).
	scratches := make([]workerScratch, pool.NumWorkers(spec.Workers, budget))
	var restoreScratch workerScratch

	for {
		// Gather this round's batch: per group, the repetitions between
		// the current count and its target, in enumeration order.
		var batch []Cell
		var owner []int
		for gi, g := range groups {
			for rep := len(g.results); rep < targets[gi]; rep++ {
				batch = append(batch, Cell{Profile: g.profile, Regime: g.regime, Rep: rep})
				owner = append(owner, gi)
			}
		}
		if len(batch) == 0 {
			break
		}

		results := make([]CellResult, len(batch))
		var pending []int
		for i, c := range batch {
			// Same restore gate as the fixed path: a stored cell is only
			// usable when its workload presence matches the spec.
			if sc, ok := stored[c.Label()]; ok && sc.Series != nil && (spec.Workload == nil) == (sc.Workload == nil) {
				results[i] = CellResult{Cell: c, Series: sc.Series, Summary: summarizeSeries(spec.Summarize, sc.Series, &restoreScratch), Workload: sc.Workload}
				continue
			}
			pending = append(pending, i)
		}
		scheduled := spent + len(batch)
		done += len(batch) - len(pending)
		fresh, errs := pool.CollectWorker(len(pending), spec.Workers, func(w, j int) (CellResult, error) {
			res := runCell(spec, batch[pending[j]], &scratches[w])
			if spec.Sink != nil && res.Err == nil {
				if err := spec.Sink.Put(res); err != nil {
					res = CellResult{Cell: res.Cell, Err: fmt.Errorf("fleet: cell %s: persisting: %w", res.Cell.Label(), err)}
				}
			}
			if spec.Progress != nil {
				mu.Lock()
				done++
				ev := Progress{Done: done, Total: scheduled, Result: res}
				func() {
					defer mu.Unlock()
					spec.Progress(ev)
				}()
			}
			return res, nil
		})
		for j, i := range pending {
			results[i] = fresh[j]
			if errs[j] != nil {
				// Only a panicking Progress hook lands here (runCell
				// recovers its own); mark the cell failed.
				results[i] = CellResult{Cell: batch[i], Err: errs[j]}
			}
		}

		// Batch barrier passed: only now do results feed the group
		// state, in repetition order — the stopping decision must not
		// see completion order.
		for i, res := range results {
			g := groups[owner[i]]
			g.results = append(g.results, res)
			if res.Err == nil {
				g.tracker.Push(res.Summary.Mean)
			}
			spent++
		}

		// Stopping decisions, then budget reallocation over whatever
		// is still unconverged.
		var open []int
		for gi, g := range groups {
			if g.stopped {
				continue
			}
			if pt, ok := g.tracker.Latest(); ok && pt.WithinBound {
				g.stopped = true
				continue
			}
			if len(g.results) >= maxReps {
				g.stopped = true
				continue
			}
			open = append(open, gi)
		}
		remaining := budget - spent
		if len(open) == 0 || remaining <= 0 {
			break
		}
		base, extra := remaining/len(open), remaining%len(open)
		grew := false
		for idx, gi := range open {
			share := base
			if idx < extra {
				share++
			}
			if share == 0 {
				continue
			}
			g := groups[gi]
			n := len(g.results)
			// CONFIRM's c/sqrt(n) extrapolation guides the next target;
			// when it has no usable prediction, grow geometrically (×1.5)
			// so a stubborn group converges in O(log MaxReps) rounds.
			want := g.tracker.Analysis().RequiredRepetitions()
			if want <= n {
				want = n + (n+1)/2
			}
			add := want - n
			if add > share {
				add = share
			}
			if n+add > maxReps {
				add = maxReps - n
			}
			if add <= 0 {
				continue
			}
			targets[gi] = n + add
			grew = true
		}
		if !grew {
			break
		}
	}

	// Cells in enumeration order: profiles outermost, then regimes,
	// then each group's repetitions 0..n-1.
	var cells []CellResult
	for _, g := range groups {
		cells = append(cells, g.results...)
	}
	result := CampaignResult{Cells: cells, Groups: groupResults(spec, cells)}
	// groupResults builds groups in first-cell-encounter order, which
	// is exactly the scheduler's enumeration order, so precision
	// attaches 1:1.
	for gi := range result.Groups {
		result.Groups[gi].Precision = groups[gi].precision()
	}
	return result
}

// precision snapshots the group's achieved CI state.
func (g *adaptiveGroup) precision() *GroupPrecision {
	p := &GroupPrecision{N: len(g.results), HalfWidth: -1, RelErr: -1}
	an := g.tracker.Analysis()
	p.Diverging = an.Diverging()
	if pt, ok := g.tracker.Latest(); ok && !math.IsNaN(pt.Lo) {
		p.HalfWidth = (pt.Hi - pt.Lo) / 2
		p.Converged = pt.WithinBound
		// A zero quantile estimate makes RelErr non-finite; keep the
		// -1 sentinel so the record stays JSON-encodable everywhere.
		if !math.IsInf(pt.RelErr, 0) && !math.IsNaN(pt.RelErr) {
			p.RelErr = pt.RelErr
		}
	}
	return p
}
