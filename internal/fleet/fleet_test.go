package fleet_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"cloudvar/internal/fleet"
	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/testutil"
	"cloudvar/internal/trace"
)

// testSpec builds the shared small-but-real matrix: two clouds, all
// three regimes, two repetitions — 12 cells.
func testSpec(t *testing.T, workers int) fleet.CampaignSpec {
	return testutil.TwoCloudSpec(t, 7, workers)
}

// TestRunDeterministicAcrossWorkerCounts is the tentpole guarantee:
// the fleet's output is bit-identical at any worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	seq, err := fleet.Run(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	testutil.AssertCellLabels(t, testSpec(t, 1), seq)
	ref := testutil.EncodeResult(t, seq)
	for _, workers := range []int{2, 8} {
		par, err := fleet.Run(testSpec(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.EncodeResult(t, par); got != ref {
			t.Fatalf("workers=%d: output differs from sequential run", workers)
		}
	}
}

// TestRunCellFailureIsolation mixes an invalid regime into the matrix:
// its cells must fail without perturbing the healthy cells' output.
func TestRunCellFailureIsolation(t *testing.T) {
	bad := trace.Regime{Name: "broken", SendSec: 5} // fails Validate: SendSec without RestSec
	healthy := testSpec(t, 4)
	healthy.Regimes = []trace.Regime{trace.FullSpeed}

	mixed := testSpec(t, 4)
	mixed.Regimes = []trace.Regime{trace.FullSpeed, bad}

	var mu sync.Mutex
	seen := 0
	mixed.Progress = func(ev fleet.Progress) {
		mu.Lock()
		seen++
		mu.Unlock()
		if ev.Total != 8 {
			t.Errorf("progress Total = %d, want 8", ev.Total)
		}
	}

	hres, err := fleet.Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := fleet.Run(mixed)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if seen != 8 {
		t.Fatalf("progress hook fired %d times, want 8", seen)
	}
	mu.Unlock()

	failed := mres.Failed()
	if len(failed) != 4 { // 2 profiles x 1 bad regime x 2 reps
		t.Fatalf("%d failed cells, want 4", len(failed))
	}
	for _, c := range failed {
		if c.Cell.Regime.Name != "broken" {
			t.Fatalf("healthy cell %s reported failure: %v", c.Cell.Label(), c.Err)
		}
		if c.Series != nil {
			t.Fatalf("failed cell %s carries a series", c.Cell.Label())
		}
	}
	if err := mres.Err(); err == nil || !strings.Contains(err.Error(), "4/8 cells failed") {
		t.Fatalf("Err() = %v, want 4/8 summary", err)
	}

	// Healthy cells are bit-identical to the all-healthy run.
	hseries := hres.Series()
	mseries := mres.Series()
	if len(mseries) != len(hseries) {
		t.Fatalf("%d healthy series in mixed run, want %d", len(mseries), len(hseries))
	}
	for label, hs := range hseries {
		ms, ok := mseries[label]
		if !ok {
			t.Fatalf("mixed run lost series %s", label)
		}
		if !testutil.SeriesEqual(hs, ms) {
			t.Fatalf("series %s perturbed by sibling failures", label)
		}
	}

	// Group aggregation counts the failures.
	for _, g := range mres.Groups {
		switch g.Regime {
		case "broken":
			if g.Failed != 2 || g.Result.Summary.N != 0 {
				t.Fatalf("broken group: %+v", g)
			}
		default:
			if g.Failed != 0 || g.Result.Summary.N != 2 {
				t.Fatalf("healthy group: failed=%d n=%d", g.Failed, g.Result.Summary.N)
			}
		}
	}
}

func TestRunGroupStatistics(t *testing.T) {
	spec := testSpec(t, 0)
	spec.Regimes = []trace.Regime{trace.FullSpeed}
	spec.Repetitions = 3
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("%d groups, want 2", len(res.Groups))
	}
	for _, g := range res.Groups {
		r := g.Result
		if r.Summary.N != 3 {
			t.Fatalf("group %s has %d samples, want 3", r.Name, r.Summary.N)
		}
		if math.IsNaN(r.Summary.Mean) || r.Summary.Mean <= 0 {
			t.Fatalf("group %s mean = %g", r.Name, r.Summary.Mean)
		}
		if r.Validation.N != 3 {
			t.Fatalf("group %s validation ran over %d samples, want 3", r.Name, r.Validation.N)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (fleet.CampaignSpec{}).Validate(); err == nil {
		t.Fatal("empty spec should fail validation")
	}
	spec := testSpec(t, 0)
	spec.Repetitions = -1
	if err := spec.Validate(); err == nil {
		t.Fatal("negative repetitions should fail validation")
	}
	spec = testSpec(t, 0)
	spec.Config.DurationSec = 0
	if err := spec.Validate(); err == nil {
		t.Fatal("invalid campaign config should fail validation")
	}
	spec = testSpec(t, 0)
	spec.Profiles[0].NewShaper = nil
	if err := spec.Validate(); err == nil {
		t.Fatal("nil shaper factory should fail validation")
	}
}

// TestCellSourceStability pins the substream derivation: the cell
// label fully determines the stream for a given seed.
func TestCellSourceStability(t *testing.T) {
	spec := testSpec(t, 0)
	cells := spec.Cells()
	if len(cells) != 12 {
		t.Fatalf("%d cells, want 12", len(cells))
	}
	a := fleet.CellSource(spec.Seed, cells[3])
	b := fleet.CellSource(spec.Seed, cells[3])
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("CellSource not reproducible for equal (seed, cell)")
		}
	}
	if fleet.CellSource(1, cells[0]).Uint64() == fleet.CellSource(2, cells[0]).Uint64() {
		t.Fatal("distinct seeds should decorrelate cell streams")
	}
}

// TestSpecValidateDuplicateCells ensures a spec whose matrix repeats a
// (profile, regime) — which would silently replay the same substream —
// is rejected up front.
func TestSpecValidateDuplicateCells(t *testing.T) {
	spec := testSpec(t, 0)
	spec.Profiles = append(spec.Profiles, spec.Profiles[0])
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate profile should fail validation, got %v", err)
	}
	spec = testSpec(t, 0)
	spec.Regimes = []trace.Regime{trace.FullSpeed, trace.FullSpeed}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate regime should fail validation, got %v", err)
	}
	if _, err := fleet.Run(spec); err == nil {
		t.Fatal("Run should reject a duplicate-cell spec")
	}
}

// TestRunPanickingCellIsolated proves a panicking shaper factory is
// folded into that cell's error, the other cells are untouched, and
// the progress hook still reaches Done == Total.
func TestRunPanickingCellIsolated(t *testing.T) {
	spec := testSpec(t, 4)
	spec.Regimes = []trace.Regime{trace.FullSpeed}
	boom := spec.Profiles[1]
	boom.Cloud = "boom"
	boom.NewShaper = func(src *simrand.Source) netem.Shaper { panic("factory exploded") }
	spec.Profiles = append(spec.Profiles, boom)

	var mu sync.Mutex
	maxDone, total := 0, 0
	spec.Progress = func(ev fleet.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Done > maxDone {
			maxDone = ev.Done
		}
		total = ev.Total
	}

	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if maxDone != total || total != 6 {
		t.Fatalf("progress reached %d/%d, want 6/6 even with panicking cells", maxDone, total)
	}
	mu.Unlock()

	failed := res.Failed()
	if len(failed) != 2 {
		t.Fatalf("%d failed cells, want 2 (the panicking profile's reps)", len(failed))
	}
	for _, c := range failed {
		if c.Cell.Profile.Cloud != "boom" {
			t.Fatalf("healthy cell %s failed: %v", c.Cell.Label(), c.Err)
		}
		if !strings.Contains(c.Err.Error(), "panicked") {
			t.Fatalf("panic not surfaced in error: %v", c.Err)
		}
	}
	for _, c := range res.Cells {
		if c.Cell.Profile.Cloud != "boom" && c.Err != nil {
			t.Fatalf("panic leaked into healthy cell %s: %v", c.Cell.Label(), c.Err)
		}
	}
}

// TestRunPanickingProgressHook proves a hook that panics neither
// deadlocks the pool nor yields a zero CellResult with nil Err.
func TestRunPanickingProgressHook(t *testing.T) {
	spec := testSpec(t, 4)
	spec.Regimes = []trace.Regime{trace.FullSpeed} // 4 cells
	calls := 0
	spec.Progress = func(ev fleet.Progress) {
		calls++ // serialized: the hook runs under the fleet's lock
		if calls == 2 {
			panic("hook exploded")
		}
	}
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	failed := res.Failed()
	if len(failed) != 1 {
		t.Fatalf("%d failed cells, want exactly the one whose hook call panicked", len(failed))
	}
	if !strings.Contains(failed[0].Err.Error(), "panicked") {
		t.Fatalf("hook panic not surfaced: %v", failed[0].Err)
	}
	for _, c := range res.Cells {
		if c.Err == nil && c.Series == nil {
			t.Fatalf("cell %s has neither series nor error", c.Cell.Label())
		}
	}
}
