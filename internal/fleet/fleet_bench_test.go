package fleet_test

import (
	"fmt"
	"testing"

	"cloudvar/internal/fleet"
	"cloudvar/internal/testutil"
)

// BenchmarkFleetRun measures the whole simulate→summarize→aggregate
// pipeline end to end on a small matrix (2 profiles × 3 regimes × 2
// repetitions, 120 emulated seconds per cell) at the worker counts the
// determinism tests pin. This is the number the paper's methodology
// actually spends: cells per CPU-second bounds campaign density.
//
//	go test ./internal/fleet -run '^$' -bench BenchmarkFleetRun -benchmem -count 10
func BenchmarkFleetRun(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := testutil.TwoCloudSpec(b, 42, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetAdaptiveRun measures the sequential-stopping scheduler
// on the same matrix with a bound tight enough that every round
// reallocates budget — the worst case for batch-barrier overhead
// relative to the fixed path above.
//
//	go test ./internal/fleet -run '^$' -bench BenchmarkFleetAdaptiveRun -benchmem -count 10
func BenchmarkFleetAdaptiveRun(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := testutil.TwoCloudSpec(b, 42, workers)
			spec.Repetitions = 8
			spec.Stopping = fleet.StoppingSpec{ErrorBound: 0.001, MaxReps: 12}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
