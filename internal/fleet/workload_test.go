package fleet_test

import (
	"strings"
	"testing"

	"cloudvar/internal/fleet"
	"cloudvar/internal/testutil"
	"cloudvar/internal/workload"
)

// workloadSpec attaches a three-client traffic mix — one client per
// arrival family, including a trace replay — to the shared two-cloud
// matrix. testutil.EncodeResult covers the per-cell workload metrics
// and per-group class results, so the determinism diffs below bind
// the traffic engine's full output.
func workloadSpec(t *testing.T, seed uint64, workers int) fleet.CampaignSpec {
	t.Helper()
	spec := testutil.TwoCloudSpec(t, seed, workers)
	spec.Workload = &workload.Spec{
		AggregateRPS: 3,
		RequestKB:    4096,
		Clients: []workload.Client{
			{ID: "web", RateFraction: 0.5, SLOClass: "interactive", Arrival: workload.Arrival{Process: workload.Poisson}},
			{ID: "etl", RateFraction: 0.3, SLOClass: "batch", Arrival: workload.Arrival{Process: workload.Gamma, CV: 2}},
			{ID: "replay", RateFraction: 0.2, Arrival: workload.Arrival{Process: workload.Trace, Times: []float64{1, 2, 44.5, 90}}},
		},
	}
	return spec
}

// TestWorkloadDeterministicAcrossWorkerCounts extends the fleet's
// tentpole guarantee to per-client traffic: with a multi-client
// workload attached, output — request streams, latencies, per-class
// aggregates — is byte-identical at any worker count, and a different
// seed moves the bytes (the property would otherwise pass vacuously).
func TestWorkloadDeterministicAcrossWorkerCounts(t *testing.T) {
	seq, err := fleet.Run(workloadSpec(t, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range seq.Cells {
		if c.Workload == nil {
			t.Fatalf("cell %s has no workload metrics", c.Cell.Label())
		}
		if c.Workload.Requests() == 0 {
			t.Fatalf("cell %s served no requests", c.Cell.Label())
		}
		if len(c.Workload.Clients) != 3 {
			t.Fatalf("cell %s has %d client series, want 3", c.Cell.Label(), len(c.Workload.Clients))
		}
	}
	ref := testutil.EncodeResult(t, seq)
	for _, workers := range []int{2, 8} {
		par, err := fleet.Run(workloadSpec(t, 7, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.EncodeResult(t, par); got != ref {
			t.Fatalf("workers=%d: workload output differs from sequential run", workers)
		}
	}
	other, err := fleet.Run(workloadSpec(t, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if testutil.EncodeResult(t, other) == ref {
		t.Fatal("different seed left the workload output unchanged")
	}
}

// TestWorkloadClassResults checks the per-group rollup: one
// ClassResult per SLO class, sorted, named group/class, with one p99
// sample per repetition and the request counts accounted for.
func TestWorkloadClassResults(t *testing.T) {
	spec := workloadSpec(t, 7, 0)
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	want := spec.Workload.Classes() // [batch interactive standard]
	for _, g := range res.Groups {
		if len(g.Classes) != len(want) {
			t.Fatalf("group %s has %d class results, want %d", g.Result.Name, len(g.Classes), len(want))
		}
		for i, cl := range g.Classes {
			if cl.Class != want[i] {
				t.Errorf("group %s class %d = %q, want %q (sorted)", g.Result.Name, i, cl.Class, want[i])
			}
			prefix := g.Cloud + "/" + g.Instance + "/" + g.Regime + "/"
			if !strings.HasPrefix(cl.Result.Name, prefix) || !strings.HasSuffix(cl.Result.Name, cl.Class) {
				t.Errorf("class result named %q, want %s%s", cl.Result.Name, prefix, cl.Class)
			}
			if cl.Result.Summary.N != spec.Repetitions {
				t.Errorf("class %s has %d samples, want one p99 per repetition (%d)",
					cl.Result.Name, cl.Result.Summary.N, spec.Repetitions)
			}
			if cl.Requests == 0 {
				t.Errorf("class %s reports zero requests", cl.Result.Name)
			}
			if cl.Result.Summary.Min <= 0 {
				t.Errorf("class %s p99 sample %g, want positive latency", cl.Result.Name, cl.Result.Summary.Min)
			}
		}
	}
}

// TestWorkloadResumeByteIdentical extends the store's resume
// guarantee to traffic-carrying campaigns: interrupted halfway and
// resumed, the output — workload metrics included — is byte-identical
// to an uninterrupted run.
func TestWorkloadResumeByteIdentical(t *testing.T) {
	st := testutil.TempStore(t)
	spec := workloadSpec(t, 7, 8)

	full, err := st.Create("full", spec, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	specFull := spec
	specFull.Sink = full
	ref, err := fleet.Run(specFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Err(); err != nil {
		t.Fatal(err)
	}

	interrupted, err := st.Create("half", spec, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer interrupted.Close()
	for _, c := range ref.Cells[:len(ref.Cells)/2] {
		if err := interrupted.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	resumedRun, err := st.Resume("half", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer resumedRun.Close()
	specResume := spec
	specResume.Sink = resumedRun
	res, err := fleet.Run(specResume)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := testutil.EncodeResult(t, res), testutil.EncodeResult(t, ref); got != want {
		t.Error("resumed workload campaign differs from uninterrupted run")
	}

	// A workload-free spec is a different experiment: resuming the
	// stored workload run with it must be rejected by the spec key.
	bare := testutil.TwoCloudSpec(t, 7, 8)
	if _, err := st.Resume("full", bare); err == nil {
		t.Fatal("resume without the workload section should be rejected")
	}
}

// TestWorkloadSourceStability pins the traffic substream derivation:
// (seed, cell, name) fully determines the stream, and distinct client
// names or cells decorrelate.
func TestWorkloadSourceStability(t *testing.T) {
	spec := workloadSpec(t, 7, 0)
	cells := spec.Cells()
	a := fleet.WorkloadSource(spec.Seed, cells[3], "client/web")
	b := fleet.WorkloadSource(spec.Seed, cells[3], "client/web")
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("WorkloadSource not reproducible for equal (seed, cell, name)")
		}
	}
	if fleet.WorkloadSource(7, cells[0], "client/web").Uint64() == fleet.WorkloadSource(7, cells[0], "client/etl").Uint64() {
		t.Fatal("distinct client names should decorrelate streams")
	}
	if fleet.WorkloadSource(7, cells[0], "client/web").Uint64() == fleet.WorkloadSource(7, cells[1], "client/web").Uint64() {
		t.Fatal("distinct cells should decorrelate streams")
	}
	if fleet.WorkloadSource(7, cells[0], "client/web").Uint64() == fleet.CellSource(7, cells[0]).Uint64() {
		t.Fatal("workload streams must not alias the measurement stream")
	}
}
