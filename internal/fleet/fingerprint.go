package fleet

import (
	"fmt"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/core"
	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
)

// ProfileKey is the stable identity of a profile inside a campaign:
// "cloud/instance". It keys fingerprint maps and drift comparisons.
func ProfileKey(p cloudmodel.Profile) string {
	return p.Cloud + "/" + p.Instance
}

// FingerprintProfiles measures the F5.2 network baseline of every
// profile in the spec — the record the paper says must accompany any
// published campaign so future runs can verify the platform still
// behaves the same before comparing numbers. Each profile is probed
// on a substream derived from (spec.Seed, "fingerprint/", profile
// key), fully independent of every cell substream, so fingerprinting
// neither perturbs campaign results nor varies with the matrix shape.
// The returned map is keyed by ProfileKey.
func FingerprintProfiles(spec CampaignSpec, cfg core.FingerprintConfig) (map[string]core.Fingerprint, error) {
	out := make(map[string]core.Fingerprint, len(spec.Profiles))
	for _, p := range spec.Profiles {
		if p.NewShaper == nil {
			return nil, fmt.Errorf("fleet: profile %s has nil shaper factory", ProfileKey(p))
		}
		src := simrand.New(spec.Seed).Substream("fingerprint/" + ProfileKey(p))
		factory := func() netem.Shaper { return p.NewShaper(src) }
		fp, err := core.FingerprintShaper(factory, p.VNIC, cfg, src)
		if err != nil {
			return nil, fmt.Errorf("fleet: fingerprinting %s: %w", ProfileKey(p), err)
		}
		out[ProfileKey(p)] = fp
	}
	return out, nil
}
