// Package pool provides a deterministic bounded-concurrency fan-out
// primitive: results are keyed by input index, so the output of a
// parallel run is independent of worker count and completion order.
// It is the low-level substrate of internal/fleet, small enough that
// packages fleet itself depends on (cloudmodel, figures) can use it
// without an import cycle.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// NumWorkers normalises a requested worker count against n tasks:
// workers <= 0 means DefaultWorkers, and a pool never runs more
// workers than tasks. Exported so callers sizing per-worker scratch
// arenas (fleet) see exactly the worker count Collect will spawn.
func NumWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Collect runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results and errors slotted by index.
// workers <= 0 means DefaultWorkers. A panicking fn is recovered into
// that index's error, so one bad task cannot take down the fleet.
// Collect never reorders: out[i] and errs[i] always belong to task i,
// regardless of which worker ran it or when it finished.
func Collect[T any](n, workers int, fn func(i int) (T, error)) (out []T, errs []error) {
	return CollectWorker(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// CollectWorker is Collect with the running worker's index (in
// [0, NumWorkers(workers, n))) passed to fn. Tasks the same worker
// runs are strictly sequential, so fn may use worker-indexed mutable
// scratch without synchronisation — but because task-to-worker
// assignment is scheduling-dependent, such scratch must never
// influence results (the determinism-vs-reuse contract; results stay
// a pure function of i).
func CollectWorker[T any](n, workers int, fn func(worker, i int) (T, error)) (out []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	out = make([]T, n)
	errs = make([]error, n)
	workers = NumWorkers(workers, n)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = protect(fn, w, i)
			}
		}(w)
	}
	wg.Wait()
	return out, errs
}

// protect invokes fn(worker, i), converting a panic into an error.
func protect[T any](fn func(worker, i int) (T, error), w, i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out, err = zero, fmt.Errorf("pool: task %d panicked: %v", i, r)
		}
	}()
	return fn(w, i)
}
