// Package pool provides a deterministic bounded-concurrency fan-out
// primitive: results are keyed by input index, so the output of a
// parallel run is independent of worker count and completion order.
// It is the low-level substrate of internal/fleet, small enough that
// packages fleet itself depends on (cloudmodel, figures) can use it
// without an import cycle.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalises a requested worker count against n tasks.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Collect runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results and errors slotted by index.
// workers <= 0 means DefaultWorkers. A panicking fn is recovered into
// that index's error, so one bad task cannot take down the fleet.
// Collect never reorders: out[i] and errs[i] always belong to task i,
// regardless of which worker ran it or when it finished.
func Collect[T any](n, workers int, fn func(i int) (T, error)) (out []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	out = make([]T, n)
	errs = make([]error, n)
	workers = clampWorkers(workers, n)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// protect invokes fn(i), converting a panic into an error.
func protect[T any](fn func(int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out, err = zero, fmt.Errorf("pool: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
