package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func countErrors(errs []error) int {
	n := 0
	for _, err := range errs {
		if err != nil {
			n++
		}
	}
	return n
}

func TestCollectOrderIndependent(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	for _, workers := range []int{1, 2, 8, 100} {
		out, errs := Collect(50, workers, fn)
		if n := countErrors(errs); n != 0 {
			t.Fatalf("workers=%d: %d errors", workers, n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, errs := Collect(64, workers, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if n := countErrors(errs); n != 0 {
		t.Fatalf("%d errors", n)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestCollectErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	out, errs := Collect(10, 4, func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("task %d: %w", i, boom)
		}
		return i, nil
	})
	if got := countErrors(errs); got != 2 {
		t.Fatalf("countErrors = %d, want 2", got)
	}
	if !errors.Is(errs[3], boom) || !errors.Is(errs[7], boom) {
		t.Fatalf("errors not slotted by index: %v", errs)
	}
	// Healthy indices still produced results.
	for _, i := range []int{0, 1, 2, 4, 5, 6, 8, 9} {
		if out[i] != i || errs[i] != nil {
			t.Fatalf("task %d perturbed by sibling failures: out=%d err=%v", i, out[i], errs[i])
		}
	}
}

func TestCollectPanicRecovered(t *testing.T) {
	_, errs := Collect(4, 2, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
	if errs[2] == nil {
		t.Fatal("panic not converted to error")
	}
	if got := countErrors(errs); got != 1 {
		t.Fatalf("countErrors = %d, want 1", got)
	}
}

func TestCollectEmpty(t *testing.T) {
	out, errs := Collect(0, 4, func(i int) (int, error) { return 0, nil })
	if out != nil || errs != nil {
		t.Fatalf("Collect(0) = %v, %v; want nil, nil", out, errs)
	}
}

func TestCollectDefaultWorkers(t *testing.T) {
	var ran atomic.Int64
	_, errs := Collect(9, 0, func(i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	})
	if ran.Load() != 9 {
		t.Fatalf("ran %d tasks, want 9", ran.Load())
	}
	if n := countErrors(errs); n != 0 {
		t.Fatalf("%d errors", n)
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
