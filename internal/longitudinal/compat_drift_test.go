package longitudinal_test

// Cross-era and cross-encoding determinism. The committed PR 6 era
// JSONL store (internal/store/testdata/goldenstore) must stay
// drift-comparable against a columnar run of the same spec, and the
// resume/worker-count byte-identity properties must hold with sketch
// summarization and columnar encoding switched on — the bounded-memory
// path earns the same determinism proof as the exact one.

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"cloudvar/internal/cloudmodel"
	"cloudvar/internal/fleet"
	"cloudvar/internal/longitudinal"
	"cloudvar/internal/store"
	"cloudvar/internal/testutil"
	"cloudvar/internal/trace"
)

// goldenStoreCopy copies the committed golden store into a scratch
// directory and opens it — resume repair and new runs must never touch
// the committed fixture.
func goldenStoreCopy(t *testing.T) *store.Store {
	t.Helper()
	src := filepath.Join("..", "store", "testdata", "goldenstore")
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// goldenFixtureSpec mirrors the spec the golden store was generated
// from (store/compat_test.go's goldenSpec, one worker).
func goldenFixtureSpec(t *testing.T) fleet.CampaignSpec {
	t.Helper()
	ec2, err := cloudmodel.EC2Profile("c5.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return fleet.CampaignSpec{
		Profiles:    []cloudmodel.Profile{ec2},
		Regimes:     []trace.Regime{trace.FullSpeed},
		Repetitions: 2,
		Config:      cloudmodel.DefaultCampaignConfig(60),
		Seed:        7,
		Workers:     1,
	}
}

// TestGoldenStoreDriftComparable: the drift analyser accepts the
// committed JSONL run and a freshly-written columnar run of the same
// spec as the same experiment — equal matrices, zero drift.
func TestGoldenStoreDriftComparable(t *testing.T) {
	st := goldenStoreCopy(t)

	spec := goldenFixtureSpec(t)
	twin, err := st.CreateWithMeta("twin", spec, store.RunMeta{Encoding: store.EncodingColumnar})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	spec.Sink = twin
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	runs, err := longitudinal.Load(st, "pr6", "twin")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := longitudinal.Analyze(runs, longitudinal.Options{})
	if err != nil {
		t.Fatalf("golden JSONL run and columnar twin are not comparable: %v", err)
	}
	if rep.Drifted() {
		t.Fatal("identical data stored under two encodings reported as drifted")
	}
	for _, k := range rep.Kappa {
		if k.Err == nil && k.Kappa != 1 {
			t.Fatalf("kappa = %v across encodings, want 1", k.Kappa)
		}
	}
}

// sketchColumnarSpec is testSpec with the bounded-memory summarizer
// switched on; runs of it are stored columnar by the helpers below.
func sketchColumnarSpec(t *testing.T, seed uint64, workers int) fleet.CampaignSpec {
	t.Helper()
	spec := testSpec(t, seed, workers)
	spec.Summarize = fleet.SummarizeSketch
	return spec
}

func runPersistedColumnar(t *testing.T, st *store.Store, runID string, spec fleet.CampaignSpec) (fleet.CampaignResult, int) {
	t.Helper()
	run, err := st.CreateWithMeta(runID, spec, store.RunMeta{Encoding: store.EncodingColumnar})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	return runWith(t, run, spec)
}

// TestResumeByteIdenticalSketchColumnar re-proves the resume and
// worker-count determinism properties with sketch summarization and
// columnar encoding enabled: the sketch summaries (recomputed from the
// restored series on resume) and the columnar round-trip must both be
// byte-invisible in testutil.EncodeResult.
func TestResumeByteIdenticalSketchColumnar(t *testing.T) {
	encoded := map[int]string{}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := testutil.TempStore(t)

			spec := sketchColumnarSpec(t, 7, workers)
			full, _ := runPersistedColumnar(t, st, "alpha", spec)
			encoded[workers] = testutil.EncodeResult(t, full)

			// The sketch mode must be part of the stored identity:
			// schema 4, summarize stamped.
			m, err := st.Manifest("alpha")
			if err != nil {
				t.Fatal(err)
			}
			if m.Spec.Schema != 4 || m.Spec.Summarize != "sketch" {
				t.Fatalf("manifest identity = schema %d summarize %q, want 4/sketch", m.Spec.Schema, m.Spec.Summarize)
			}

			// Interrupt halfway, resume: only the missing cells run,
			// and the result is byte-identical — including the sketch
			// summaries, which the restore path recomputes.
			interrupted, err := st.CreateWithMeta("bravo", spec, store.RunMeta{Encoding: store.EncodingColumnar})
			if err != nil {
				t.Fatal(err)
			}
			half := len(full.Cells) / 2
			for _, c := range full.Cells[:half] {
				if err := interrupted.Put(c); err != nil {
					t.Fatal(err)
				}
			}
			resumed, executed := runWith(t, interrupted, spec)
			interrupted.Close()
			if want := len(full.Cells) - half; executed != want {
				t.Fatalf("resume executed %d cells, want exactly the %d missing ones", executed, want)
			}
			if testutil.EncodeResult(t, resumed) != encoded[workers] {
				t.Fatal("sketch+columnar resume is not byte-identical to the uninterrupted run")
			}
		})
	}
	if encoded[1] != encoded[8] {
		t.Fatal("sketch+columnar results differ between workers=1 and workers=8")
	}
}
