// Package longitudinal answers the paper's replication question over
// stored campaign runs: given two or more runs of the same spec taken
// at different times, did the platform drift, and do the conclusions
// replicate? It operationalises three of the paper's checks:
//
//   - F5.2 fingerprint gate: runs are only comparable when their
//     recorded platform fingerprints still Match within tolerance.
//   - F5.3 statistics: per-(cloud, instance, regime) groups are
//     rebuilt with core.BuildResult from each run's cells and
//     compared with CompareMedians — overlapping CIs mean "no
//     detectable drift", not a percentage change.
//   - Section 2 agreement: every cell is reduced to a categorical
//     variability conclusion (the CoV band an experimenter would
//     report), and Cohen's kappa between runs measures whether those
//     conclusions replicate — κ ≥ 0.8 is the paper's "almost perfect
//     agreement" bar.
//
// Cells are aligned across runs by their stable fleet label, so the
// analysis is independent of completion order, worker count, and
// whether a run was resumed.
package longitudinal

import (
	"fmt"
	"io"
	"math"
	"sort"

	"cloudvar/internal/core"
	"cloudvar/internal/stats"
	"cloudvar/internal/store"
)

// RunData is one stored run loaded for analysis.
type RunData struct {
	Manifest store.Manifest
	Cells    []store.CellRecord
}

// Load reads the named runs from the store, in the given order (the
// first run is the drift baseline).
func Load(st *store.Store, runIDs ...string) ([]RunData, error) {
	if st == nil {
		return nil, fmt.Errorf("longitudinal: nil store")
	}
	out := make([]RunData, 0, len(runIDs))
	for _, id := range runIDs {
		m, err := st.Manifest(id)
		if err != nil {
			return nil, err
		}
		// A shard-stamped run is one worker's fragment of a distributed
		// campaign: comparing it longitudinally would report drift that
		// is really just missing cells.
		if m.Shard != nil {
			return nil, fmt.Errorf("longitudinal: run %s is shard %d/%d of a distributed campaign — merge the shards before drift analysis", id, m.Shard.Index, m.Shard.Count)
		}
		cells, err := st.Cells(id)
		if err != nil {
			return nil, err
		}
		out = append(out, RunData{Manifest: m, Cells: cells})
	}
	return out, nil
}

// Options parameterises the analysis; zero values take the paper
// defaults.
type Options struct {
	// Confidence and ErrorBound parameterise the per-group median CIs
	// (defaults 0.95 and 0.05).
	Confidence float64
	ErrorBound float64
	// FingerprintTolerance is the relative tolerance for the F5.2
	// Matches gate (default 0.15).
	FingerprintTolerance float64
}

func (o Options) withDefaults() Options {
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.ErrorBound == 0 {
		o.ErrorBound = 0.05
	}
	if o.FingerprintTolerance == 0 {
		o.FingerprintTolerance = 0.15
	}
	return o
}

// FingerprintCheck is the F5.2 gate for one profile between the
// baseline run and a later run.
type FingerprintCheck struct {
	// Profile is the "cloud/instance" key.
	Profile string
	// RunID is the later run compared against the baseline.
	RunID string
	// Present reports whether both manifests recorded a fingerprint
	// for the profile; Matches is only meaningful when true.
	Present bool
	// Matches is core.Fingerprint.Matches at the configured tolerance.
	Matches bool
}

// GroupDrift compares one (cloud, instance, regime) group across
// runs.
type GroupDrift struct {
	// Group is "cloud/instance/regime".
	Group string
	// PerRun holds the group's core.Result per run, in run order;
	// samples are each repetition's mean send-phase bandwidth, the
	// same reduction fleet.Run applies.
	PerRun []core.Result
	// Distinguishable[i] compares run i against run 0 with
	// CompareMedians: true means the medians moved detectably — the
	// platform drifted for this group. Index 0 is always false.
	Distinguishable []bool
	// CompareErr[i] is non-nil when the CIs needed for the comparison
	// were unavailable (too few repetitions).
	CompareErr []error
	// MedianShift[i] is run i's median as a fraction of run 0's
	// median, minus 1 (e.g. -0.25 = 25% slower). NaN when the
	// baseline median is 0.
	MedianShift []float64
}

// KappaResult is the conclusion-agreement score between the baseline
// run and one later run.
type KappaResult struct {
	RunID string
	// N is the number of cells present in both runs.
	N int
	// Kappa is Cohen's kappa over per-cell variability conclusions;
	// Err is non-nil when kappa is undefined (e.g. no common cells).
	Kappa float64
	Err   error
	// Interpretation is the Viera & Garrett band for Kappa.
	Interpretation string
	// Disagreements lists the labels whose conclusions flipped.
	Disagreements []string
}

// Report is the full cross-run drift analysis.
type Report struct {
	// MatrixKey is the shared seed-independent content address of
	// every analysed run.
	MatrixKey string
	// Runs are the analysed manifests, baseline first.
	Runs []store.Manifest
	// CellCounts is the number of persisted cells per run.
	CellCounts []int
	// Fingerprints holds the F5.2 gate results, sorted by profile
	// then run.
	Fingerprints []FingerprintCheck
	// Groups holds per-group drift, sorted by group label.
	Groups []GroupDrift
	// Classes holds per-(group, SLO class) tail-latency drift for runs
	// that carried a traffic workload, sorted by label; empty for
	// measurement-only runs. Samples are each repetition's p99 request
	// latency in ms (lower is better), compared the same way as
	// bandwidth medians.
	Classes []GroupDrift
	// Kappa holds conclusion agreement per later run, in run order.
	Kappa []KappaResult
	// Options echoes the effective analysis parameters.
	Options Options
}

// Conclusion reduces one cell to the categorical claim an
// experimenter would publish about it: the variability band of its
// bandwidth CoV, in the vocabulary of the paper's Section 3 figures.
// Replication means this label, not the raw numbers, survives a
// re-run.
func Conclusion(rec store.CellRecord) string {
	// CoV needs only the first two moments — identical bits to
	// Summary().CoV without sorting the series.
	cov := stats.CoefficientOfVariation(rec.Series.Bandwidths())
	switch {
	case cov < 0.05:
		return "stable (CoV < 5%)"
	case cov < 0.15:
		return "moderate (CoV 5-15%)"
	case cov < 0.50:
		return "variable (CoV 15-50%)"
	default:
		return "extreme (CoV >= 50%)"
	}
}

// Analyze runs the drift analysis over two or more loaded runs. All
// runs must share one matrix key — same campaign matrix and
// measurement config, though typically different seeds ("different
// days"); anything else is the apples-to-oranges comparison the paper
// warns against, and an error here.
func Analyze(runs []RunData, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if len(runs) < 2 {
		return nil, fmt.Errorf("longitudinal: need >= 2 runs, got %d", len(runs))
	}
	key := runs[0].Manifest.MatrixKey
	baseScenario := runs[0].Manifest.Spec.Scenario
	for _, r := range runs[1:] {
		if r.Manifest.MatrixKey != key {
			// Mismatched scenarios are the most likely (and most
			// easily missed) way to land here, so name them: a
			// noisy-neighbor run drifting against a quiet baseline is
			// an adverse-condition finding, not platform drift.
			if s := r.Manifest.Spec.Scenario; s.String() != baseScenario.String() {
				return nil, fmt.Errorf("longitudinal: run %q was measured under scenario %s but baseline %q under %s — runs under different adverse-condition scenarios are not comparable",
					r.Manifest.RunID, s, runs[0].Manifest.RunID, baseScenario)
			}
			return nil, fmt.Errorf("longitudinal: run %q has matrix %.12s but baseline %q has %.12s — only runs of identical campaign matrices are comparable (F5.2)",
				r.Manifest.RunID, r.Manifest.MatrixKey, runs[0].Manifest.RunID, key)
		}
	}

	rep := &Report{MatrixKey: key, Options: opts}
	for _, r := range runs {
		rep.Runs = append(rep.Runs, r.Manifest)
		rep.CellCounts = append(rep.CellCounts, len(r.Cells))
	}
	rep.Fingerprints = fingerprintChecks(runs, opts.FingerprintTolerance)
	rep.Groups = groupDrift(runs, opts)
	rep.Classes = classDrift(runs, opts)
	rep.Kappa = kappaChecks(runs)
	return rep, nil
}

func fingerprintChecks(runs []RunData, tol float64) []FingerprintCheck {
	base := runs[0].Manifest.Fingerprints
	profiles := make([]string, 0, len(base))
	for p := range base {
		profiles = append(profiles, p)
	}
	sort.Strings(profiles)
	var out []FingerprintCheck
	for _, p := range profiles {
		for _, r := range runs[1:] {
			c := FingerprintCheck{Profile: p, RunID: r.Manifest.RunID}
			if fp, ok := r.Manifest.Fingerprints[p]; ok {
				c.Present = true
				c.Matches = base[p].Matches(fp, tol)
			}
			out = append(out, c)
		}
	}
	return out
}

func groupDrift(runs []RunData, opts Options) []GroupDrift {
	// Collect per-run samples per group: one sample per repetition,
	// its series' mean bandwidth — the same rollup fleet.Run feeds
	// core.BuildResult.
	type groupKey struct{ cloud, instance, regime string }
	samples := make(map[groupKey][]map[int]float64) // group -> runIdx -> rep -> mean
	var order []groupKey
	for i, r := range runs {
		for _, cell := range r.Cells {
			k := groupKey{cell.Cloud, cell.Instance, cell.Regime}
			if _, ok := samples[k]; !ok {
				samples[k] = make([]map[int]float64, len(runs))
				order = append(order, k)
			}
			if samples[k][i] == nil {
				samples[k][i] = make(map[int]float64)
			}
			samples[k][i][cell.Rep] = stats.Mean(cell.Series.Bandwidths())
		}
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if x.cloud != y.cloud {
			return x.cloud < y.cloud
		}
		if x.instance != y.instance {
			return x.instance < y.instance
		}
		return x.regime < y.regime
	})

	var out []GroupDrift
	for _, k := range order {
		name := fmt.Sprintf("%s/%s/%s", k.cloud, k.instance, k.regime)
		g := GroupDrift{Group: name}
		for i, r := range runs {
			perRep := samples[k][i]
			reps := make([]int, 0, len(perRep))
			for rep := range perRep {
				reps = append(reps, rep)
			}
			sort.Ints(reps)
			vals := make([]float64, 0, len(reps))
			for _, rep := range reps {
				vals = append(vals, perRep[rep])
			}
			g.PerRun = append(g.PerRun,
				core.BuildResult(fmt.Sprintf("%s@%s", name, r.Manifest.RunID), vals, opts.Confidence, opts.ErrorBound))
		}
		g.Distinguishable = make([]bool, len(runs))
		g.CompareErr = make([]error, len(runs))
		g.MedianShift = make([]float64, len(runs))
		base := g.PerRun[0]
		for i := 1; i < len(runs); i++ {
			g.Distinguishable[i], g.CompareErr[i] = core.CompareMedians(base, g.PerRun[i])
			if base.Summary.Median != 0 {
				g.MedianShift[i] = g.PerRun[i].Summary.Median/base.Summary.Median - 1
			} else {
				g.MedianShift[i] = math.NaN()
			}
		}
		out = append(out, g)
	}
	return out
}

// classDrift compares per-SLO-class tail latency across runs, for
// runs whose cells carried workload traffic. Each cell contributes
// one sample per class — the p99 of that repetition's request
// latencies — mirroring the per-class rollup fleet.Run reports.
func classDrift(runs []RunData, opts Options) []GroupDrift {
	type classKey struct{ cloud, instance, regime, class string }
	samples := make(map[classKey][]map[int]float64)
	var order []classKey
	for i, r := range runs {
		for _, cell := range r.Cells {
			if cell.Workload == nil {
				continue
			}
			for class, lats := range cell.Workload.ClassLatencies() {
				if len(lats) == 0 {
					continue
				}
				k := classKey{cell.Cloud, cell.Instance, cell.Regime, class}
				if _, ok := samples[k]; !ok {
					samples[k] = make([]map[int]float64, len(runs))
					order = append(order, k)
				}
				if samples[k][i] == nil {
					samples[k][i] = make(map[int]float64)
				}
				samples[k][i][cell.Rep] = stats.Quantile(lats, 0.99)
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if x.cloud != y.cloud {
			return x.cloud < y.cloud
		}
		if x.instance != y.instance {
			return x.instance < y.instance
		}
		if x.regime != y.regime {
			return x.regime < y.regime
		}
		return x.class < y.class
	})

	var out []GroupDrift
	for _, k := range order {
		name := fmt.Sprintf("%s/%s/%s/%s", k.cloud, k.instance, k.regime, k.class)
		g := GroupDrift{Group: name}
		for i, r := range runs {
			perRep := samples[k][i]
			reps := make([]int, 0, len(perRep))
			for rep := range perRep {
				reps = append(reps, rep)
			}
			sort.Ints(reps)
			vals := make([]float64, 0, len(reps))
			for _, rep := range reps {
				vals = append(vals, perRep[rep])
			}
			g.PerRun = append(g.PerRun,
				core.BuildResult(fmt.Sprintf("%s@%s", name, r.Manifest.RunID), vals, opts.Confidence, opts.ErrorBound))
		}
		g.Distinguishable = make([]bool, len(runs))
		g.CompareErr = make([]error, len(runs))
		g.MedianShift = make([]float64, len(runs))
		base := g.PerRun[0]
		for i := 1; i < len(runs); i++ {
			g.Distinguishable[i], g.CompareErr[i] = core.CompareMedians(base, g.PerRun[i])
			if base.Summary.Median != 0 {
				g.MedianShift[i] = g.PerRun[i].Summary.Median/base.Summary.Median - 1
			} else {
				g.MedianShift[i] = math.NaN()
			}
		}
		out = append(out, g)
	}
	return out
}

func kappaChecks(runs []RunData) []KappaResult {
	base := make(map[string]string, len(runs[0].Cells))
	for _, cell := range runs[0].Cells {
		base[cell.Label] = Conclusion(cell)
	}
	var out []KappaResult
	for _, r := range runs[1:] {
		res := KappaResult{RunID: r.Manifest.RunID}
		var a, b []string
		for _, cell := range r.Cells {
			conclBase, ok := base[cell.Label]
			if !ok {
				continue
			}
			concl := Conclusion(cell)
			a = append(a, conclBase)
			b = append(b, concl)
			if concl != conclBase {
				res.Disagreements = append(res.Disagreements, cell.Label)
			}
		}
		res.N = len(a)
		sort.Strings(res.Disagreements)
		res.Kappa, res.Err = stats.CohenKappa(a, b)
		if res.Err == nil {
			res.Interpretation = stats.KappaInterpretation(res.Kappa)
		}
		out = append(out, res)
	}
	return out
}

// Drifted reports whether any drift signal fired: a fingerprint
// mismatch, a distinguishable group median, or a later run whose
// conclusions fell below almost-perfect agreement (κ < 0.8).
func (r *Report) Drifted() bool {
	for _, f := range r.Fingerprints {
		if f.Present && !f.Matches {
			return true
		}
	}
	for _, g := range r.Groups {
		for _, d := range g.Distinguishable {
			if d {
				return true
			}
		}
	}
	for _, g := range r.Classes {
		for _, d := range g.Distinguishable {
			if d {
				return true
			}
		}
	}
	for _, k := range r.Kappa {
		if k.Err == nil && k.Kappa < 0.8 {
			return true
		}
	}
	return false
}

// WriteMarkdown renders the report the way its facts should appear in
// an artifact appendix: baselines first, then per-group statistics,
// then conclusion agreement.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# Longitudinal drift report\n\nmatrix %.12s, scenario %s, %d runs (baseline %s)\n\n",
		r.MatrixKey, r.Runs[0].Spec.Scenario, len(r.Runs), r.Runs[0].RunID); err != nil {
		return err
	}
	if err := p("## Runs\n\n"); err != nil {
		return err
	}
	for i, m := range r.Runs {
		if err := p("- %s: seed %d, %d cells persisted\n", m.RunID, m.Spec.Seed, r.CellCounts[i]); err != nil {
			return err
		}
	}

	// Adaptive campaigns record their achieved per-group precision in
	// the manifest; surface it so a reader knows how trustworthy each
	// run's medians are. Fixed-repetition runs have no records and the
	// section (like the report bytes) is unchanged.
	hasPrecision := false
	for _, m := range r.Runs {
		if len(m.Precision) > 0 {
			hasPrecision = true
			break
		}
	}
	if hasPrecision {
		if err := p("\n## Adaptive stopping precision (CONFIRM)\n\n"); err != nil {
			return err
		}
		for _, m := range r.Runs {
			if len(m.Precision) == 0 {
				if err := p("- %s: no precision records (fixed repetitions, or interrupted before completion)\n", m.RunID); err != nil {
					return err
				}
				continue
			}
			for _, pr := range m.Precision {
				line := fmt.Sprintf("- %s %s: n=%d", m.RunID, pr.Group, pr.N)
				if pr.HalfWidth >= 0 {
					line += fmt.Sprintf(", CI half-width %.4g", pr.HalfWidth)
				}
				if pr.RelErr >= 0 {
					line += fmt.Sprintf(" (rel. error %.2f%%)", pr.RelErr*100)
				}
				if pr.Converged {
					line += " — converged"
				} else {
					line += " — NOT converged"
				}
				if pr.Diverging {
					line += ", DIVERGING (repetitions may not be independent)"
				}
				if err := p("%s\n", line); err != nil {
					return err
				}
			}
		}
	}

	if err := p("\n## Fingerprint gate (F5.2, tolerance %.0f%%)\n\n", r.Options.FingerprintTolerance*100); err != nil {
		return err
	}
	if len(r.Fingerprints) == 0 {
		if err := p("- no fingerprints recorded; comparisons below are ungated\n"); err != nil {
			return err
		}
	}
	for _, f := range r.Fingerprints {
		switch {
		case !f.Present:
			if err := p("- %s vs %s: MISSING fingerprint — cannot verify the platform held still\n", f.Profile, f.RunID); err != nil {
				return err
			}
		case f.Matches:
			if err := p("- %s vs %s: baselines match\n", f.Profile, f.RunID); err != nil {
				return err
			}
		default:
			if err := p("- %s vs %s: BASELINE DRIFT — the platform changed; do not compare raw numbers\n", f.Profile, f.RunID); err != nil {
				return err
			}
		}
	}

	if err := p("\n## Per-group medians (F5.3)\n\n"); err != nil {
		return err
	}
	for _, g := range r.Groups {
		if err := p("### %s\n\n", g.Group); err != nil {
			return err
		}
		for i, res := range g.PerRun {
			ci := "CI unavailable"
			if res.MedianCIErr == nil {
				ci = fmt.Sprintf("%.0f%% CI [%.4g, %.4g]", r.Options.Confidence*100, res.MedianCI.Lo, res.MedianCI.Hi)
			}
			line := fmt.Sprintf("- %s: n=%d median %.4g Gbps, %s", r.Runs[i].RunID, res.Summary.N, res.Summary.Median, ci)
			if i > 0 {
				switch {
				case g.CompareErr[i] != nil:
					line += fmt.Sprintf(" — comparison unavailable (%v)", g.CompareErr[i])
				case g.Distinguishable[i]:
					line += fmt.Sprintf(" — DRIFTED vs baseline (median %+.1f%%)", g.MedianShift[i]*100)
				default:
					line += " — no detectable drift"
				}
			}
			if err := p("%s\n", line); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}

	if len(r.Classes) > 0 {
		if err := p("## Per-SLO-class tail latency (p99 per repetition)\n\n"); err != nil {
			return err
		}
		for _, g := range r.Classes {
			if err := p("### %s\n\n", g.Group); err != nil {
				return err
			}
			for i, res := range g.PerRun {
				ci := "CI unavailable"
				if res.MedianCIErr == nil {
					ci = fmt.Sprintf("%.0f%% CI [%.4g, %.4g]", r.Options.Confidence*100, res.MedianCI.Lo, res.MedianCI.Hi)
				}
				line := fmt.Sprintf("- %s: n=%d median p99 %.4g ms, %s", r.Runs[i].RunID, res.Summary.N, res.Summary.Median, ci)
				if i > 0 {
					switch {
					case g.CompareErr[i] != nil:
						line += fmt.Sprintf(" — comparison unavailable (%v)", g.CompareErr[i])
					case g.Distinguishable[i]:
						line += fmt.Sprintf(" — DRIFTED vs baseline (p99 %+.1f%%)", g.MedianShift[i]*100)
					default:
						line += " — no detectable drift"
					}
				}
				if err := p("%s\n", line); err != nil {
					return err
				}
			}
			if err := p("\n"); err != nil {
				return err
			}
		}
	}

	if err := p("## Conclusion agreement (Cohen's kappa over per-cell variability bands)\n\n"); err != nil {
		return err
	}
	for _, k := range r.Kappa {
		if k.Err != nil {
			if err := p("- %s vs %s: kappa unavailable (%v)\n", r.Runs[0].RunID, k.RunID, k.Err); err != nil {
				return err
			}
			continue
		}
		if err := p("- %s vs %s: κ = %.3f (%s) over %d cells", r.Runs[0].RunID, k.RunID, k.Kappa, k.Interpretation, k.N); err != nil {
			return err
		}
		if len(k.Disagreements) > 0 {
			if err := p("; flipped: %v", k.Disagreements); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}

	verdict := "conclusions replicate: no drift signal fired"
	if r.Drifted() {
		verdict = "DRIFT DETECTED: re-establish baselines before comparing against these runs"
	}
	return p("\n**Verdict:** %s.\n", verdict)
}
