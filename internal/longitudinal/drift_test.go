package longitudinal_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cloudvar/internal/core"
	"cloudvar/internal/fleet"
	"cloudvar/internal/longitudinal"
	"cloudvar/internal/store"
	"cloudvar/internal/testutil"
	"cloudvar/internal/trace"
)

// testSpec is the shared single-profile matrix with the repetition
// count the drift statistics need.
func testSpec(t *testing.T, seed uint64, workers int) fleet.CampaignSpec {
	t.Helper()
	spec := testutil.EC2Spec(t, seed, workers)
	spec.Repetitions = 3
	return spec
}

// runPersisted executes the spec into a new store run and returns the
// result plus the number of cells that actually executed (vs were
// restored from disk).
func runPersisted(t *testing.T, st *store.Store, runID string, spec fleet.CampaignSpec) (fleet.CampaignResult, int) {
	t.Helper()
	run, err := st.Create(runID, spec, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	res, executed := runWith(t, run, spec)
	// Adaptive runs record their achieved precision in the manifest
	// (a no-op for fixed-repetition specs), as cloudbench does.
	if err := run.RecordPrecision(res.Groups); err != nil {
		t.Fatal(err)
	}
	return res, executed
}

func runWith(t *testing.T, sink fleet.Sink, spec fleet.CampaignSpec) (fleet.CampaignResult, int) {
	t.Helper()
	executed := 0
	spec.Sink = sink
	spec.Progress = func(fleet.Progress) { executed++ }
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res, executed
}

// TestResumeByteIdentical is the tentpole acceptance criterion: a
// campaign interrupted partway and resumed re-executes zero completed
// cells, and both the final CampaignResult and the drift report
// against a second run are byte-identical to an uninterrupted run —
// at workers=1 and workers=8.
func TestResumeByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := testutil.TempStore(t)

			// The second "day": same matrix, different seed — the
			// drift comparison partner for both variants.
			day2, _ := runPersisted(t, st, "day2", testSpec(t, 8, workers))
			_ = day2

			// Uninterrupted reference run. (The run IDs are chosen
			// not to be substrings of any other report text, since
			// the byte comparison normalises them away.)
			spec := testSpec(t, 7, workers)
			full, _ := runPersisted(t, st, "alpha", spec)

			// Interrupted run: persist only the first half of the
			// cells, as if the process died mid-campaign.
			interrupted, err := st.Create("bravo", spec, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			half := len(full.Cells) / 2
			persisted := make(map[string]bool)
			for _, c := range full.Cells[:half] {
				if err := interrupted.Put(c); err != nil {
					t.Fatal(err)
				}
				persisted[c.Cell.Label()] = true
			}

			// Resume. Zero persisted cells may re-execute.
			resumed, executed := runWith(t, interrupted, spec)
			interrupted.Close()
			if want := len(full.Cells) - half; executed != want {
				t.Fatalf("resume executed %d cells, want exactly the %d missing ones", executed, want)
			}

			if got, want := testutil.EncodeResult(t, resumed), testutil.EncodeResult(t, full); got != want {
				t.Fatal("resumed CampaignResult is not byte-identical to the uninterrupted run")
			}

			// The drift report against day2 must not see any
			// difference either.
			report := func(runID string) []byte {
				runs, err := longitudinal.Load(st, runID, "day2")
				if err != nil {
					t.Fatal(err)
				}
				rep, err := longitudinal.Analyze(runs, longitudinal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				// The run ID appears in the rendered report; normalise
				// it away so the byte comparison sees only data.
				if err := rep.WriteMarkdown(&buf); err != nil {
					t.Fatal(err)
				}
				return bytes.ReplaceAll(buf.Bytes(), []byte(runID), []byte("RUN"))
			}
			if !bytes.Equal(report("alpha"), report("bravo")) {
				t.Fatal("drift report from the resumed run is not byte-identical to the uninterrupted run's")
			}
		})
	}
}

// adaptiveTestSpec is testSpec under a sequential-stopping policy
// whose bound is unreachable, so every group deterministically grows
// past the minimum into reallocated budget — the schedule itself is
// exercised, not just the fixed prefix.
func adaptiveTestSpec(t *testing.T, seed uint64, workers int) fleet.CampaignSpec {
	t.Helper()
	spec := testutil.EC2Spec(t, seed, workers)
	spec.Repetitions = 8
	spec.Stopping = fleet.StoppingSpec{ErrorBound: 0.001, MaxReps: 12}
	return spec
}

// TestAdaptiveResumeByteIdentical extends the resume acceptance
// criterion to adaptive campaigns: because the stopping decisions are
// a pure function of cell data, a resumed run re-derives the same
// schedule, re-executes only the missing cells, and produces a result
// (including the achieved-precision records) byte-identical to the
// uninterrupted run — at workers=1 and workers=8.
func TestAdaptiveResumeByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := testutil.TempStore(t)

			// Drift partner: same adaptive matrix, different seed.
			day2, _ := runPersisted(t, st, "day2", adaptiveTestSpec(t, 8, workers))
			_ = day2

			spec := adaptiveTestSpec(t, 7, workers)
			full, _ := runPersisted(t, st, "alpha", spec)

			interrupted, err := st.Create("bravo", spec, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			half := len(full.Cells) / 2
			for _, c := range full.Cells[:half] {
				if err := interrupted.Put(c); err != nil {
					t.Fatal(err)
				}
			}

			resumed, executed := runWith(t, interrupted, spec)
			if err := interrupted.RecordPrecision(resumed.Groups); err != nil {
				t.Fatal(err)
			}
			interrupted.Close()
			if want := len(full.Cells) - half; executed != want {
				t.Fatalf("adaptive resume executed %d cells, want exactly the %d missing ones", executed, want)
			}
			if got, want := testutil.EncodeResult(t, resumed), testutil.EncodeResult(t, full); got != want {
				t.Fatal("resumed adaptive CampaignResult is not byte-identical to the uninterrupted run")
			}

			report := func(runID string) []byte {
				runs, err := longitudinal.Load(st, runID, "day2")
				if err != nil {
					t.Fatal(err)
				}
				rep, err := longitudinal.Analyze(runs, longitudinal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rep.WriteMarkdown(&buf); err != nil {
					t.Fatal(err)
				}
				return bytes.ReplaceAll(buf.Bytes(), []byte(runID), []byte("RUN"))
			}
			alpha := report("alpha")
			if !bytes.Contains(alpha, []byte("## Adaptive stopping precision")) {
				t.Error("drift report lacks the adaptive precision section")
			}
			if !bytes.Equal(alpha, report("bravo")) {
				t.Fatal("drift report from the resumed adaptive run is not byte-identical to the uninterrupted run's")
			}
		})
	}
}

// TestResumeAcrossWorkerCounts: a run persisted at workers=1 then
// resumed at workers=8 (and vice versa) still reproduces the
// sequential result exactly.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	st := testutil.TempStore(t)
	ref, _ := runPersisted(t, st, "ref", testSpec(t, 7, 1))

	spec1 := testSpec(t, 7, 1)
	partial, err := st.Create("mixed", spec1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.Put(ref.Cells[0]); err != nil {
		t.Fatal(err)
	}
	res, executed := runWith(t, partial, testSpec(t, 7, 8))
	partial.Close()
	if executed != len(ref.Cells)-1 {
		t.Fatalf("executed %d, want %d", executed, len(ref.Cells)-1)
	}
	if testutil.EncodeResult(t, res) != testutil.EncodeResult(t, ref) {
		t.Fatal("worker-count change across resume broke determinism")
	}
}

// syntheticRun fabricates a stored-run shape directly, bypassing the
// store, so drift scenarios can be scripted precisely.
func syntheticRun(runID, matrixKey string, seed uint64, bandwidth func(rep int, regime string) []float64) longitudinal.RunData {
	rd := longitudinal.RunData{Manifest: store.Manifest{
		Schema: store.SchemaVersion, RunID: runID,
		SpecKey: "spec-" + runID, MatrixKey: matrixKey,
		Spec: store.SpecIdentity{Seed: seed},
	}}
	for _, regime := range []string{"full-speed", "10-30"} {
		for rep := 0; rep < 6; rep++ {
			s := trace.NewSeries(fmt.Sprintf("ec2/c5.xlarge/%s/rep%d", regime, rep), 10)
			for i, bw := range bandwidth(rep, regime) {
				s.Points = append(s.Points, trace.Point{TimeSec: float64(i) * 10, BandwidthGbps: bw})
			}
			rd.Cells = append(rd.Cells, store.CellRecord{
				Schema: store.SchemaVersion,
				Label:  s.Label, Cloud: "ec2", Instance: "c5.xlarge",
				Regime: regime, Rep: rep, Series: s,
			})
		}
	}
	return rd
}

func TestAnalyzeDetectsDrift(t *testing.T) {
	// steady produces low-CoV series whose per-repetition means spread
	// by ±0.25 around the level, so same-level runs have overlapping
	// median CIs (no detectable drift) while halved-level runs do not.
	steady := func(level, jitter float64) func(rep int, regime string) []float64 {
		return func(rep int, regime string) []float64 {
			out := make([]float64, 20)
			for i := range out {
				out[i] = level + 0.1*float64(rep) + jitter*float64(i%5)
			}
			return out
		}
	}
	base := syntheticRun("day1", "m1", 1, steady(9, 0.05))

	t.Run("no drift", func(t *testing.T) {
		same := syntheticRun("day2", "m1", 2, steady(9, 0.06))
		rep, err := longitudinal.Analyze([]longitudinal.RunData{base, same}, longitudinal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Drifted() {
			t.Fatal("near-identical runs flagged as drifted")
		}
		for _, k := range rep.Kappa {
			if k.Err != nil || k.Kappa != 1 {
				t.Fatalf("kappa = %v (%v), want 1", k.Kappa, k.Err)
			}
		}
	})

	t.Run("median drift", func(t *testing.T) {
		// Halved bandwidth: medians must become distinguishable.
		slower := syntheticRun("day2", "m1", 2, steady(4.5, 0.05))
		rep, err := longitudinal.Analyze([]longitudinal.RunData{base, slower}, longitudinal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Drifted() {
			t.Fatal("halved bandwidth not flagged as drift")
		}
		found := false
		for _, g := range rep.Groups {
			if g.CompareErr[1] == nil && g.Distinguishable[1] {
				found = true
				if g.MedianShift[1] > -0.4 {
					t.Fatalf("median shift %.2f, want about -0.5", g.MedianShift[1])
				}
			}
		}
		if !found {
			t.Fatal("no group distinguishable from baseline")
		}
	})

	t.Run("conclusion flip lowers kappa", func(t *testing.T) {
		// Same medians, wildly different variability: the per-cell
		// conclusion bands flip even though medians hold.
		noisy := syntheticRun("day2", "m1", 2, func(rep int, regime string) []float64 {
			out := make([]float64, 20)
			for i := range out {
				out[i] = 9 + 6*float64(i%2) - 3 // alternates 6 and 12
			}
			return out
		})
		rep, err := longitudinal.Analyze([]longitudinal.RunData{base, noisy}, longitudinal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Kappa) != 1 {
			t.Fatalf("%d kappa results, want 1", len(rep.Kappa))
		}
		k := rep.Kappa[0]
		if k.Err == nil && k.Kappa >= 0.8 {
			t.Fatalf("kappa %.2f despite every conclusion flipping", k.Kappa)
		}
		if len(k.Disagreements) != 12 {
			t.Fatalf("%d disagreements, want 12", len(k.Disagreements))
		}
		if !rep.Drifted() {
			t.Fatal("conclusion flips not flagged as drift")
		}
	})
}

func TestAnalyzeRejectsIncomparableRuns(t *testing.T) {
	a := syntheticRun("day1", "m1", 1, func(int, string) []float64 { return []float64{9, 9, 9} })
	b := syntheticRun("day2", "m2", 2, func(int, string) []float64 { return []float64{9, 9, 9} })
	if _, err := longitudinal.Analyze([]longitudinal.RunData{a, b}, longitudinal.Options{}); err == nil {
		t.Fatal("different matrix keys must be rejected")
	}
	if _, err := longitudinal.Analyze([]longitudinal.RunData{a}, longitudinal.Options{}); err == nil {
		t.Fatal("a single run is not a longitudinal analysis")
	}
}

// TestLoadRefusesShardStampedRun: a shard store is one worker's
// fragment of a distributed campaign; drifting over it would report
// missing cells as drift. Load must refuse it and point at the merge.
func TestLoadRefusesShardStampedRun(t *testing.T) {
	spec := testSpec(t, 7, 1)
	st := testutil.TempStore(t)
	run, err := st.CreateWithMeta("frag", spec, store.RunMeta{
		CreatedUnix: 1,
		Shard:       &store.ShardStamp{Index: 0, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	_, err = longitudinal.Load(st, "frag")
	if err == nil {
		t.Fatal("Load accepted a shard-stamped run")
	}
	if !strings.Contains(err.Error(), "merge the shards") {
		t.Errorf("refusal should point at the merge, got: %v", err)
	}
}

// TestAnalyzeNamesScenarioMismatch checks the scenario gate: two runs
// whose matrices differ because their scenarios differ get an error
// that names the scenarios, not just opaque hashes.
func TestAnalyzeNamesScenarioMismatch(t *testing.T) {
	flat := func(int, string) []float64 { return []float64{9, 9, 9} }
	quiet := syntheticRun("day1", "m-quiet", 1, flat)
	noisy := syntheticRun("day2", "m-noisy", 2, flat)
	noisy.Manifest.Spec.Scenario = fleet.ScenarioID{
		Name: "noisy-neighbor", Params: map[string]float64{"depth": 0.45},
	}
	_, err := longitudinal.Analyze([]longitudinal.RunData{quiet, noisy}, longitudinal.Options{})
	if err == nil {
		t.Fatal("mismatched scenarios must be rejected")
	}
	for _, want := range []string{"noisy-neighbor", "scenario"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestWriteMarkdownSections(t *testing.T) {
	a := syntheticRun("day1", "m1", 1, func(rep int, _ string) []float64 {
		return []float64{9, 9.1, 9.2, 9 + float64(rep)/10}
	})
	b := syntheticRun("day2", "m1", 2, func(rep int, _ string) []float64 {
		return []float64{9.1, 9.2, 9.15, 9.05 + float64(rep)/10}
	})
	a.Manifest.Fingerprints = map[string]core.Fingerprint{
		"ec2/c5.xlarge": {BaseRTTms: 0.1, BaseBandwidthGbps: 9.6},
	}
	b.Manifest.Fingerprints = map[string]core.Fingerprint{
		"ec2/c5.xlarge": {BaseRTTms: 0.1, BaseBandwidthGbps: 9.5},
	}
	rep, err := longitudinal.Analyze([]longitudinal.RunData{a, b}, longitudinal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Longitudinal drift report",
		"scenario none",
		"## Runs",
		"## Fingerprint gate",
		"baselines match",
		"## Per-group medians",
		"ec2/c5.xlarge/full-speed",
		"## Conclusion agreement",
		"**Verdict:**",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
