// Benchmarks regenerating every table and figure in the paper's
// evaluation (the harness of DESIGN.md §4), plus the ablation
// comparisons of DESIGN.md §5 and micro-benchmarks of the hot paths.
//
// Each BenchmarkTableN / BenchmarkFigureN runs the corresponding
// artifact generator at a reduced scale so the full suite stays
// tractable; run cmd/reproduce -scale 1 for the full-size artifacts.
package cloudvar_test

import (
	"math"
	"testing"

	cloudvar "cloudvar"
	"cloudvar/internal/figures"
	"cloudvar/internal/netem"
	"cloudvar/internal/simrand"
	"cloudvar/internal/stats"
	"cloudvar/internal/tokenbucket"
)

// benchArtifact runs one figure generator per iteration.
func benchArtifact(b *testing.B, id string, scale float64) {
	b.Helper()
	cfg := figures.Config{Seed: 42, Scale: scale}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Generate(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 2: survey and low-repetition emulation ---

func BenchmarkTable1Survey(b *testing.B)        { benchArtifact(b, "table1", 1) }
func BenchmarkTable2SurveyFunnel(b *testing.B)  { benchArtifact(b, "table2", 1) }
func BenchmarkFigure1aReporting(b *testing.B)   { benchArtifact(b, "figure1a", 1) }
func BenchmarkFigure1bRepetitions(b *testing.B) { benchArtifact(b, "figure1b", 1) }
func BenchmarkFigure2Distributions(b *testing.B) {
	benchArtifact(b, "figure2", 1)
}
func BenchmarkFigure3aKMeansCIs(b *testing.B) { benchArtifact(b, "figure3a", 0.08) }
func BenchmarkFigure3bQ68Tail(b *testing.B)   { benchArtifact(b, "figure3b", 0.08) }

// --- Section 3: network variability measurements ---

func BenchmarkTable3Campaign(b *testing.B)    { benchArtifact(b, "table3", 0.05) }
func BenchmarkFigure4HPCCloud(b *testing.B)   { benchArtifact(b, "figure4", 0.05) }
func BenchmarkFigure5GCE(b *testing.B)        { benchArtifact(b, "figure5", 0.05) }
func BenchmarkFigure6EC2(b *testing.B)        { benchArtifact(b, "figure6", 0.05) }
func BenchmarkFigure7EC2Latency(b *testing.B) { benchArtifact(b, "figure7", 0.25) }
func BenchmarkFigure8GCELatency(b *testing.B) { benchArtifact(b, "figure8", 0.25) }
func BenchmarkFigure9Retrans(b *testing.B)    { benchArtifact(b, "figure9", 0.05) }
func BenchmarkFigure10Traffic(b *testing.B)   { benchArtifact(b, "figure10", 0.05) }
func BenchmarkFigure11TokenBucket(b *testing.B) {
	benchArtifact(b, "figure11", 0.2)
}
func BenchmarkFigure12WriteSize(b *testing.B) { benchArtifact(b, "figure12", 0.2) }

// --- Section 4: application-level reproducibility ---

func BenchmarkFigure13Confirm(b *testing.B)    { benchArtifact(b, "figure13", 0.1) }
func BenchmarkFigure14Validation(b *testing.B) { benchArtifact(b, "figure14", 1) }
func BenchmarkTable4Setup(b *testing.B)        { benchArtifact(b, "table4", 1) }
func BenchmarkFigure15Terasort(b *testing.B)   { benchArtifact(b, "figure15", 0.1) }
func BenchmarkFigure16HiBench(b *testing.B)    { benchArtifact(b, "figure16", 0.1) }
func BenchmarkFigure17TPCDS(b *testing.B)      { benchArtifact(b, "figure17", 0.1) }
func BenchmarkFigure18Straggler(b *testing.B)  { benchArtifact(b, "figure18", 0.1) }
func BenchmarkFigure19Depletion(b *testing.B)  { benchArtifact(b, "figure19", 0.1) }

// --- Extensions (beyond the paper; DESIGN.md substitutions table) ---

func BenchmarkExtensionCPUBurst(b *testing.B)  { benchArtifact(b, "ext-cpuburst", 0.5) }
func BenchmarkExtensionDiurnal(b *testing.B)   { benchArtifact(b, "ext-diurnal", 0.1) }
func BenchmarkExtensionScenarios(b *testing.B) { benchArtifact(b, "ext-scenarios", 0.1) }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationBucketIntegration compares the production
// closed-form token-bucket integration against a naive fixed-step
// integrator, for both speed and accuracy (logged as a metric).
func BenchmarkAblationBucketIntegration(b *testing.B) {
	params := tokenbucket.Params{BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1}

	// Fixed-step reference integrator: 10 ms Euler steps.
	fixedStep := func(demand, dt float64) float64 {
		tokens := params.BudgetGbit
		moved := 0.0
		const step = 0.01
		for t := 0.0; t < dt; t += step {
			rate := params.LowGbps
			if tokens > 0 {
				rate = params.HighGbps
			}
			if demand < rate {
				rate = demand
			}
			moved += rate * step
			tokens += (params.RefillGbps - rate) * step
			if tokens > params.BudgetGbit {
				tokens = params.BudgetGbit
			}
			if tokens < 0 {
				tokens = 0
			}
		}
		return moved
	}

	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bucket := tokenbucket.MustNew(params)
			_ = bucket.Transfer(1e12, 1000)
		}
	})
	b.Run("fixed-step-10ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fixedStep(1e12, 1000)
		}
	})

	// Report the step integrator's volume error against closed form.
	bucket := tokenbucket.MustNew(params)
	exact := bucket.Transfer(1e12, 1000)
	approx := fixedStep(1e12, 1000)
	b.Logf("volume over 1000 s: closed-form %.3f Gbit, fixed-step %.3f Gbit (err %.4f%%)",
		exact, approx, math.Abs(exact-approx)/exact*100)
}

// BenchmarkAblationCIMethod compares the binomial order-statistic CI
// (no resampling) against percentile bootstrap.
func BenchmarkAblationCIMethod(b *testing.B) {
	src := simrand.New(9)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = src.Normal(100, 10)
	}
	b.Run("order-statistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stats.MedianCI(xs, 0.95); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bootstrap-1000", func(b *testing.B) {
		bs := simrand.New(10)
		for i := 0; i < b.N; i++ {
			if _, err := stats.BootstrapCI(xs, stats.Median, 0.95, 1000, bs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEventQueue compares the binary-heap scheduler with
// per-event cost under churn (schedule + drain cycles).
func BenchmarkAblationEventQueue(b *testing.B) {
	src := simrand.New(11)
	times := make([]float64, 512)
	for i := range times {
		times[i] = src.Float64() * 1e5
	}
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := netem.NewEngine()
			for _, at := range times {
				e.Schedule(at, func() {})
			}
			e.Drain(len(times) + 1)
		}
	})
	// The calendar-queue comparator lives unexported in netem and is
	// exercised by its package tests; here the heap is benchmarked
	// against re-sorting a slice per event, the simplest alternative.
	b.Run("sorted-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pending := append([]float64(nil), times...)
			for len(pending) > 0 {
				min := 0
				for j, at := range pending {
					if at < pending[min] {
						min = j
					}
				}
				pending[min] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
			}
		}
	})
}

// BenchmarkAblationShuffleModel compares the production max-min
// fair-share network against the aggregate-pipe approximation
// (total shuffle volume / aggregate bandwidth), measuring the runtime
// estimate divergence it would introduce.
func BenchmarkAblationShuffleModel(b *testing.B) {
	const (
		nodes    = 12
		flowGbit = 25.0
	)
	b.Run("max-min-network", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := netem.NewNetwork()
			for k := 0; k < nodes; k++ {
				name := nodeName(k)
				if _, err := n.AddNIC(name, &netem.FixedShaper{RateGbps: 10}, 10); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < nodes*4; k++ {
				src := nodeName(k % nodes)
				dst := nodeName((k + 1 + k/nodes) % nodes)
				if src == dst {
					dst = nodeName((k + 2) % nodes)
				}
				if _, err := n.StartFlow(src, dst, flowGbit, math.Inf(1), nil); err != nil {
					b.Fatal(err)
				}
			}
			n.RunWhileActive(1e6)
		}
	})
	b.Run("aggregate-pipe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := float64(nodes*4) * flowGbit
			aggregate := float64(nodes) * 10
			_ = total / aggregate // single division: trivially fast, no contention detail
		}
	})
}

// --- Hot-path micro-benchmarks ---

func BenchmarkBucketTransferShort(b *testing.B) {
	bucket := tokenbucket.MustNew(tokenbucket.Params{
		BudgetGbit: 5400, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bucket.SetTokens(100)
		_ = bucket.Transfer(10, 30)
	}
}

func BenchmarkQuantileCI(b *testing.B) {
	src := simrand.New(3)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.QuantileCI(xs, 0.9, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicFacade exercises the re-exported API end to end.
func BenchmarkPublicFacade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := cloudvar.NewRand(uint64(i))
		bucket, err := cloudvar.NewTokenBucket(cloudvar.TokenBucketParams{
			BudgetGbit: 100, RefillGbps: 1, HighGbps: 10, LowGbps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = bucket.Transfer(10, 60)
		_ = src.Float64()
	}
}

func nodeName(i int) string {
	return string([]byte{'n', byte('a' + i%26), byte('0' + i/26)})
}
